package aba

import (
	"ccba/internal/fmine"
	"ccba/internal/netsim"
	"ccba/internal/obs"
	"ccba/internal/types"
	"ccba/internal/wire"
)

// Config parameterises one node's ABA instance.
type Config struct {
	// N is the node count; F the fault budget (requires N > 3F).
	N, F int
	// Me is this node's identity.
	Me types.NodeID
	// Domain is the instance's coin domain; every node of one instance must
	// agree on it, and distinct instances (ACS slots) must differ.
	Domain string
	// Suite mines and verifies the coin-share tickets (probability CoinProb).
	Suite fmine.Suite
	// Source is the shared common-coin value table.
	Source *CoinSource
	// Sink receives EvCoin reveals (the zero Sink is off).
	Sink obs.Sink
	// Slot labels the instance in coin events (0 standalone).
	Slot int
}

// roundState is one node's bookkeeping for one ABA round.
type roundState struct {
	bvalSent  [2]bool
	bvalRecv  [][2]bool
	bvalCount [2]int
	bin       [2]bool
	binFirst  types.Bit // first value that entered bin_values

	auxSent bool
	auxRecv []bool
	auxVal  []types.Bit

	shareSent  bool
	shareRecv  []bool
	shareCount int
	coinKnown  bool
}

// Instance is one node's state machine of a Canetti–Rabin-style binary
// Byzantine agreement (the Mostéfaoui–Moumen–Raynal realisation): per
// round, binary-value broadcast (BVAL, with f+1 amplification and 2f+1
// admission into bin_values), an AUX exchange establishing n−f support,
// then a common-coin reveal gated on f+1 verified shares; est follows the
// coin on disagreement, and a round that sees unanimous support for the
// coin's value decides it. A DONE gadget terminates: f+1 DONEs adopt the
// decision, 2f+1 allow the halt (SNIPPETS §1's COMPLETE step).
//
// The instance is a pure state machine: SetInput and Handle return the
// sends they trigger; the embedding runtime moves them onto the wire.
// Every quorum is tracked in per-sender slices — no map iteration, so
// executions are bit-reproducible.
type Instance struct {
	cfg  Config
	n, f int

	miner  fmine.Miner
	verify fmine.Verifier

	started bool
	halted  bool
	est     types.Bit
	round   uint32 // current round, 1-based once started

	decided      bool
	decision     types.Bit
	decidedRound uint32

	rounds []*roundState

	doneRecv  [][2]bool
	doneCount [2]int
	doneSent  bool

	out []netsim.Send // per-call send accumulator
}

// NewInstance builds one node's instance.
func NewInstance(cfg Config) *Instance {
	return &Instance{
		cfg:      cfg,
		n:        cfg.N,
		f:        cfg.F,
		miner:    cfg.Suite.Miner(cfg.Me),
		verify:   cfg.Suite.Verifier(),
		est:      types.NoBit,
		doneRecv: make([][2]bool, cfg.N),
	}
}

// Started reports whether SetInput has run.
func (in *Instance) Started() bool { return in.started }

// Halted reports whether the termination gadget completed.
func (in *Instance) Halted() bool { return in.halted }

// Decided returns the decision and whether one was reached.
func (in *Instance) Decided() (types.Bit, bool) { return in.decision, in.decided }

// DecidedRound returns the 1-based round the decision was reached in (0 if
// undecided) — the termination-latency observable E15 plots.
func (in *Instance) DecidedRound() int { return int(in.decidedRound) }

// Round returns the current 1-based round (0 before SetInput).
func (in *Instance) Round() int { return int(in.round) }

// SetInput starts the instance with estimate b. Messages that arrived
// before the input (an ACS slot starts its ABA only when the matching BRB
// delivers) were tallied by Handle; SetInput drains everything that became
// due.
func (in *Instance) SetInput(b types.Bit) []netsim.Send {
	if in.started || in.halted || !b.Valid() {
		return nil
	}
	in.started = true
	in.est = b
	in.round = 1
	in.out = in.out[:0]
	rs := in.rs(1)
	if !rs.bvalSent[b] {
		rs.bvalSent[b] = true
		in.send(BValMsg{Round: 1, B: b})
	}
	in.progress()
	return in.flush()
}

// Handle processes one message from an authenticated sender and returns
// the sends it triggers. Bookkeeping happens even before SetInput; sends
// only flow once started.
func (in *Instance) Handle(from types.NodeID, msg wire.Message) []netsim.Send {
	in.out = in.out[:0]
	switch m := msg.(type) {
	case BValMsg:
		rs := in.rs(m.Round)
		if !rs.bvalRecv[from][m.B] {
			rs.bvalRecv[from][m.B] = true
			rs.bvalCount[m.B]++
		}
	case AuxMsg:
		rs := in.rs(m.Round)
		if !rs.auxRecv[from] {
			rs.auxRecv[from] = true
			rs.auxVal[from] = m.B
		}
	case CoinMsg:
		rs := in.rs(m.Round)
		if !rs.shareRecv[from] && in.verify.Verify(coinTag(in.cfg.Domain, m.Round), from, m.Proof) {
			rs.shareRecv[from] = true
			rs.shareCount++
		}
	case DoneMsg:
		if !in.doneRecv[from][m.B] {
			in.doneRecv[from][m.B] = true
			in.doneCount[m.B]++
		}
	default:
		return nil
	}
	if in.started && !in.halted {
		in.progress()
	}
	return in.flush()
}

// progress drains every enabled transition to a fixpoint.
func (in *Instance) progress() {
	for changed := true; changed && !in.halted; {
		changed = in.stepDone()
		if in.halted {
			return
		}
		for r := uint32(1); r <= uint32(len(in.rounds)); r++ {
			changed = in.stepEchoes(r) || changed
		}
		changed = in.stepRound() || changed
	}
}

// stepDone runs the termination gadget: f+1 DONE(b) adopt (and re-announce)
// the decision, 2f+1 permit the halt once our own DONE is out.
func (in *Instance) stepDone() bool {
	changed := false
	for b := 0; b < 2; b++ {
		if in.doneCount[b] >= in.f+1 {
			changed = in.decide(types.Bit(b)) || changed
		}
		if in.doneCount[b] >= 2*in.f+1 && in.doneSent {
			in.halted = true
			return true
		}
	}
	return changed
}

// stepEchoes runs round r's binary-value broadcast bookkeeping: amplify a
// value on f+1 distinct BVALs, admit it into bin_values on 2f+1.
func (in *Instance) stepEchoes(r uint32) bool {
	rs := in.rounds[r-1]
	changed := false
	for b := 0; b < 2; b++ {
		if rs.bvalCount[b] >= in.f+1 && !rs.bvalSent[b] {
			rs.bvalSent[b] = true
			in.send(BValMsg{Round: r, B: types.Bit(b)})
			changed = true
		}
		if rs.bvalCount[b] >= 2*in.f+1 && !rs.bin[b] {
			rs.bin[b] = true
			if !rs.binFirst.Valid() {
				rs.binFirst = types.Bit(b)
			}
			changed = true
		}
	}
	return changed
}

// stepRound advances the current round's AUX → coin-share → reveal
// pipeline.
func (in *Instance) stepRound() bool {
	rs := in.rs(in.round)
	changed := false
	if !rs.auxSent && rs.binFirst.Valid() {
		rs.auxSent = true
		in.send(AuxMsg{Round: in.round, B: rs.binFirst})
		changed = true
	}
	if rs.auxSent && !rs.shareSent && in.auxSupport(rs) >= in.n-in.f {
		rs.shareSent = true
		if proof, ok := in.miner.Mine(coinTag(in.cfg.Domain, in.round)); ok {
			in.send(CoinMsg{Round: in.round, Proof: proof})
		}
		changed = true
	}
	if rs.shareSent && !rs.coinKnown && rs.shareCount >= in.f+1 {
		rs.coinKnown = true
		in.resolve(rs)
		changed = true
	}
	return changed
}

// auxSupport counts senders whose AUX value has entered bin_values — the
// n−f support condition that guarantees every honest vals set draws from
// binary values some honest node estimated.
func (in *Instance) auxSupport(rs *roundState) int {
	cnt := 0
	for i := range rs.auxRecv {
		if rs.auxRecv[i] && rs.auxVal[i].Valid() && rs.bin[rs.auxVal[i]] {
			cnt++
		}
	}
	return cnt
}

// resolve executes the coin step of the current round: reveal the common
// coin, recompute vals from the supported AUX values, decide when they
// agree with the coin, and enter the next round with the new estimate.
func (in *Instance) resolve(rs *roundState) {
	coin := in.cfg.Source.Value(coinTag(in.cfg.Domain, in.round))
	in.cfg.Sink.Coin(int(in.round), in.cfg.Me, in.cfg.Slot, coin)

	var vals [2]bool
	for i := range rs.auxRecv {
		if rs.auxRecv[i] && rs.auxVal[i].Valid() && rs.bin[rs.auxVal[i]] {
			vals[rs.auxVal[i]] = true
		}
	}
	switch {
	case vals[0] != vals[1]: // exactly one value supported
		v := types.BitFromBool(vals[1])
		in.est = v
		if v == coin {
			in.decide(v)
		}
	default: // both (or, unreachable, neither): follow the coin
		in.est = coin
	}
	in.round++
	next := in.rs(in.round)
	if !next.bvalSent[in.est] {
		next.bvalSent[in.est] = true
		in.send(BValMsg{Round: in.round, B: in.est})
	}
}

// decide records the decision (first one wins) and broadcasts DONE once.
func (in *Instance) decide(b types.Bit) bool {
	changed := false
	if !in.decided {
		in.decided = true
		in.decision = b
		in.decidedRound = in.round
		changed = true
	}
	if !in.doneSent {
		in.doneSent = true
		in.send(DoneMsg{B: in.decision})
		changed = true
	}
	return changed
}

// rs returns round r's state, growing the window as needed (r is 1-based).
func (in *Instance) rs(r uint32) *roundState {
	for uint32(len(in.rounds)) < r {
		in.rounds = append(in.rounds, &roundState{
			bvalRecv:  make([][2]bool, in.n),
			auxRecv:   make([]bool, in.n),
			auxVal:    make([]types.Bit, in.n),
			shareRecv: make([]bool, in.n),
			binFirst:  types.NoBit,
		})
	}
	return in.rounds[r-1]
}

// send queues one multicast on the per-call accumulator.
func (in *Instance) send(m wire.Message) {
	in.out = append(in.out, netsim.Multicast(m))
}

// flush hands the accumulated sends to the caller. The accumulator is
// reused across calls; callers consume the slice before the next call, as
// the netsim engines do with node send lists.
func (in *Instance) flush() []netsim.Send {
	return in.out
}
