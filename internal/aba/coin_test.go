package aba

import (
	"testing"

	"ccba/internal/crypto/pki"
	"ccba/internal/fmine"
	"ccba/internal/obs"
	"ccba/internal/types"
)

// TestCoinIdenticalAcrossNodes: the coin is a pure function of (seed,
// instance, round) — every honest node reading the same source sees the
// same bit, and during a full run every EvCoin event for one (slot, round)
// carries one value.
func TestCoinIdenticalAcrossNodes(t *testing.T) {
	seed := seedByte(1)
	a, b := NewCoinSource(seed), NewCoinSource(seed)
	for r := uint32(1); r <= 64; r++ {
		for _, dom := range []string{"aba/0", "acs/3/coin"} {
			if a.Value(coinTag(dom, r)) != b.Value(coinTag(dom, r)) {
				t.Fatalf("coin diverged at (%s, %d)", dom, r)
			}
		}
	}

	// End to end: collect EvCoin from a mixed-input run and assert per
	// (slot, round) uniqueness of the revealed bit.
	rec := obs.NewRecorder(0)
	n, f := 4, 1
	suite := fmine.NewIdeal(seed, CoinProb)
	src := NewCoinSource(seed)
	nodes := buildNodes(n, f, suite, src, obs.NewSink(rec), mixedInputs(n))
	runEventNodes(t, n, f, seed, nodes)
	byRound := map[[2]int32]int32{}
	saw := false
	for _, e := range rec.Events() {
		if e.Kind != obs.EvCoin {
			continue
		}
		saw = true
		key := [2]int32{e.Round, int32(e.Seq)}
		if prev, ok := byRound[key]; ok && prev != e.A {
			t.Fatalf("round %d: node %d revealed coin %d, earlier reveal was %d", e.Round, e.Node, e.A, prev)
		}
		byRound[key] = e.A
	}
	if !saw {
		t.Fatal("run revealed no coins")
	}
}

// TestCoinHiddenFromShareSubset: in ideal mode the ticket shares carry no
// information about the coin value — any f-subset of shares predicts the
// coin no better than a fair guess, and the verifier refuses shares that
// were never mined (so a silent adversary cannot even check candidates).
func TestCoinHiddenFromShareSubset(t *testing.T) {
	seed := seedByte(2)
	suite := fmine.NewIdeal(seed, CoinProb)
	src := NewCoinSource(seed)
	const rounds = 2048
	f := 1

	// Before any miner mines, Verify answers false even for the true share
	// holder: the ideal functionality only attests to queries it has seen.
	ver := suite.Verifier()
	probe := suite.Miner(0)
	tag := coinTag("aba/0", 1)
	proof, ok := probe.Mine(tag)
	if !ok {
		t.Fatal("CoinProb share failed to mine")
	}
	if ver.Verify(coinTag("aba/0", 2), 0, proof) {
		t.Fatal("share for round 1 verified against round 2")
	}

	// An adversary holding the f lowest shares guesses the coin from them;
	// across many rounds the hit rate must be indistinguishable from 1/2.
	miners := make([]fmine.Miner, f)
	for i := range miners {
		miners[i] = suite.Miner(types.NodeID(i))
	}
	hits := 0
	for r := uint32(1); r <= rounds; r++ {
		tag := coinTag("aba/0", r)
		var guess byte
		for _, m := range miners {
			p, ok := m.Mine(tag)
			if !ok || len(p) == 0 {
				t.Fatalf("round %d: share missing", r)
			}
			guess ^= p[len(p)-1]
		}
		if types.Bit(guess&1) == src.Value(tag) {
			hits++
		}
	}
	rate := float64(hits) / rounds
	if rate < 0.45 || rate > 0.55 {
		t.Fatalf("f-subset share predictor hit rate %.3f; coin leaks through shares", rate)
	}
}

// TestCoinIdealEqualsReal: under the Appendix D compiler the coin VALUE is
// dealt from the seed-keyed source in both crypto modes, so on equal seeds
// the ideal and real executions reveal identical coin sequences (the modes
// differ only in how the reveal is attested).
func TestCoinIdealEqualsReal(t *testing.T) {
	for s := byte(0); s < 4; s++ {
		seed := seedByte(s)
		n, f := 4, 1

		coins := func(suite fmine.Suite) map[[2]int32]int32 {
			rec := obs.NewRecorder(0)
			src := NewCoinSource(seed)
			nodes := buildNodes(n, f, suite, src, obs.NewSink(rec), mixedInputs(n))
			runEventNodes(t, n, f, seed, nodes)
			got := map[[2]int32]int32{}
			for _, e := range rec.Events() {
				if e.Kind == obs.EvCoin {
					got[[2]int32{e.Round, int32(e.Seq)}] = e.A
				}
			}
			return got
		}

		ideal := coins(fmine.NewIdeal(seed, CoinProb))
		pub, secrets := pki.Setup(n, seed)
		real := coins(fmine.NewReal(pub, secrets, CoinProb))

		if len(ideal) == 0 {
			t.Fatalf("seed=%d: ideal run revealed no coins", s)
		}
		for key, v := range ideal {
			rv, ok := real[key]
			if ok && rv != v {
				t.Fatalf("seed=%d: coin (round=%d, slot=%d) ideal=%d real=%d", s, key[0], key[1], v, rv)
			}
		}
	}
}

// TestCoinRevealGatedOnQuorum drives one instance by hand: with only f
// verified shares the coin stays sealed; the f+1-th share reveals it.
func TestCoinRevealGatedOnQuorum(t *testing.T) {
	seed := seedByte(3)
	n, f := 4, 1
	suite := fmine.NewIdeal(seed, CoinProb)
	rec := obs.NewRecorder(0)
	in := NewInstance(Config{
		N: n, F: f, Me: 3,
		Domain: "aba/0", Suite: suite, Source: NewCoinSource(seed),
		Sink: obs.NewSink(rec),
	})
	in.SetInput(types.One)
	// Drive BVAL and AUX quorums so our node reaches the share stage.
	for i := 0; i < 3; i++ {
		in.Handle(types.NodeID(i), BValMsg{Round: 1, B: types.One})
	}
	for i := 0; i < 3; i++ {
		in.Handle(types.NodeID(i), AuxMsg{Round: 1, B: types.One})
	}
	countCoins := func() int {
		c := 0
		for _, e := range rec.Events() {
			if e.Kind == obs.EvCoin {
				c++
			}
		}
		return c
	}
	// Our own share is in flight but not delivered back; one peer share
	// (f total verified) must not reveal.
	p0, _ := suite.Miner(0).Mine(coinTag("aba/0", 1))
	in.Handle(0, CoinMsg{Round: 1, Proof: p0})
	if countCoins() != 0 {
		t.Fatal("coin revealed on f shares")
	}
	// A bogus share must not count toward the quorum.
	in.Handle(1, CoinMsg{Round: 1, Proof: []byte("forged")})
	if countCoins() != 0 {
		t.Fatal("forged share advanced the reveal quorum")
	}
	p2, _ := suite.Miner(2).Mine(coinTag("aba/0", 1))
	in.Handle(2, CoinMsg{Round: 1, Proof: p2})
	if countCoins() != 1 {
		t.Fatalf("coin reveals after f+1 shares: got %d events", countCoins())
	}
	if in.Round() != 2 {
		t.Fatalf("round after reveal = %d, want 2", in.Round())
	}
}
