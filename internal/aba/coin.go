package aba

import (
	"sync"

	"ccba/internal/crypto/prf"
	"ccba/internal/fmine"
	"ccba/internal/types"
)

// coinDomainLabel separates the coin-value PRF key from every other
// derivation of the run seed.
const coinDomainLabel = "aba/coin"

// CoinSource is the trusted dealer's common-coin value table: a hidden PRF
// keyed off the run seed, evaluated on the (instance, round) coin tag. It
// models the threshold secret the Canetti–Rabin setup shares among the
// nodes — the coin VALUE lives here, identically in the ideal and real
// crypto modes, while the fmine ticket shares only gate its reveal. That
// split is what makes "ideal ≡ real coin values on equal seeds" a testable
// property rather than a modelling accident (DESIGN.md §11).
//
// Safe for concurrent use; one source serves every node of a run.
type CoinSource struct {
	mu      sync.Mutex
	st      *prf.State
	scratch []byte
}

// NewCoinSource builds the coin table for one run seed.
func NewCoinSource(seed [32]byte) *CoinSource {
	return &CoinSource{st: prf.NewState(prf.DeriveKey(prf.Key(seed), coinDomainLabel))}
}

// Value returns the coin bit for one (instance, round) tag.
func (s *CoinSource) Value(tag fmine.Tag) types.Bit {
	s.mu.Lock()
	s.scratch = tag.AppendEncode(s.scratch[:0])
	out := s.st.Eval(s.scratch)
	s.mu.Unlock()
	return types.Bit(out[0] & 1)
}

// CoinProb is the fmine success probability of coin-share tags: every node
// holds a share (the threshold structure is in the f+1 reveal quorum, not
// in share scarcity).
func CoinProb(fmine.Tag) float64 { return 1 }

// coinTag is the mining tag of instance domain's round-r coin share.
func coinTag(domain string, round uint32) fmine.Tag {
	return fmine.Tag{Domain: domain, Type: uint8(KindCoin), Iter: round, Bit: types.NoBit}
}
