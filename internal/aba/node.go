package aba

import (
	"ccba/internal/netsim"
	"ccba/internal/types"
)

// Node runs one standalone ABA instance behind netsim.AsyncNode.
type Node struct {
	in    *Instance
	input types.Bit
}

// NewNode builds one participant with its input bit.
func NewNode(cfg Config, input types.Bit) *Node {
	return &Node{in: NewInstance(cfg), input: input}
}

// Start implements netsim.AsyncNode.
func (nd *Node) Start() []netsim.Send { return nd.in.SetInput(nd.input) }

// Deliver implements netsim.AsyncNode.
func (nd *Node) Deliver(d netsim.Delivered) []netsim.Send { return nd.in.Handle(d.From, d.Msg) }

// Output implements netsim.AsyncNode.
func (nd *Node) Output() (types.Bit, bool) { return nd.in.Decided() }

// Halted implements netsim.AsyncNode.
func (nd *Node) Halted() bool { return nd.in.Halted() }

// DecidedRound exposes the decision round for latency distributions.
func (nd *Node) DecidedRound() int { return nd.in.DecidedRound() }

var _ netsim.AsyncNode = (*Node)(nil)
