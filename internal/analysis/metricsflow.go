package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Metricsflow guards the paper's communication-complexity accounting
// (Definitions 6–7): the fields of netsim.Metrics may only be written
// inside methods declared on the type itself — CountSend, Add, and the
// wire codec — so the lockstep engine, the sparse path, and the live
// cluster runtime can never drift apart on what a send costs. Reading the
// fields is free; writing them anywhere else re-implements the accounting
// rule and is exactly the drift the analyzer exists to stop (DESIGN.md §8).
var Metricsflow = &Analyzer{
	Name:      "metricsflow",
	Directive: "metrics-ok",
	Doc: "netsim.Metrics fields may only be mutated through methods on the " +
		"type (CountSend/Add/codec) so Definitions 6–7 accounting cannot drift",
	Run: runMetricsflow,
}

const (
	netsimPath  = "ccba/internal/netsim"
	metricsName = "Metrics"
)

func runMetricsflow(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if p.Pkg.Path() == netsimPath && recvIsMetrics(p, fn) {
				continue // the blessed accounting methods themselves
			}
			checkMetricsWrites(p, fn.Body)
		}
		// Composite literals with explicit fields re-state accounting
		// outside the rule; the zero literal (a fresh counter) is fine.
		if p.Pkg.Path() == netsimPath {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || len(lit.Elts) == 0 {
				return true
			}
			if isNamed(p.Info.TypeOf(lit), netsimPath, metricsName) {
				p.Reportf(lit.Pos(), "netsim.Metrics constructed with explicit fields outside netsim: account through CountSend/Add instead")
			}
			return true
		})
	}
}

// recvIsMetrics reports whether fn is a method with receiver Metrics or
// *Metrics.
func recvIsMetrics(p *Pass, fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) != 1 {
		return false
	}
	return isNamed(p.Info.TypeOf(fn.Recv.List[0].Type), netsimPath, metricsName)
}

// checkMetricsWrites flags assignments, compound assignments, ++/--, and
// address-taking of netsim.Metrics fields inside body.
func checkMetricsWrites(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if sel := metricsFieldSel(p, lhs); sel != nil {
					p.Reportf(lhs.Pos(), "direct write to netsim.Metrics.%s: all accounting goes through Metrics methods (CountSend/Add)", sel.Obj().Name())
				}
			}
		case *ast.IncDecStmt:
			if sel := metricsFieldSel(p, n.X); sel != nil {
				p.Reportf(n.Pos(), "direct %s of netsim.Metrics.%s: all accounting goes through Metrics methods (CountSend/Add)", n.Tok, sel.Obj().Name())
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if sel := metricsFieldSel(p, n.X); sel != nil {
					p.Reportf(n.Pos(), "taking the address of netsim.Metrics.%s opens a mutation path outside the accounting methods", sel.Obj().Name())
				}
			}
		}
		return true
	})
}

// metricsFieldSel returns the selection when expr selects a field of
// netsim.Metrics, else nil.
func metricsFieldSel(p *Pass, expr ast.Expr) *types.Selection {
	selExpr, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	sel := p.Info.Selections[selExpr]
	if sel == nil || sel.Kind() != types.FieldVal {
		return nil
	}
	if !isNamed(sel.Recv(), netsimPath, metricsName) {
		return nil
	}
	return sel
}
