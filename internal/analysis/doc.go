// Package analysis is the repo's custom static-analysis suite: a small,
// dependency-free reimplementation of the go/analysis model (the module
// vendors nothing, so golang.org/x/tools is out of reach) plus the
// analyzers that enforce ccba's determinism, accounting, and
// power-boundary invariants at compile time instead of golden-diff time.
//
// The suite is compiled into cmd/ccbavet, which runs standalone over
// package patterns and speaks the `go vet -vettool` driver protocol.
// Each analyzer documents the paper definition or cross-runtime
// equivalence claim it protects.
//
// Architecture: DESIGN.md §8.
package analysis
