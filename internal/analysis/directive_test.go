package analysis

import "testing"

func TestDirectivesFixture(t *testing.T) {
	RunFixture(t, Directives, "ccba/internal/dirfix")
}
