package analysis

import "testing"

func TestMetricsflowFixture(t *testing.T) {
	RunFixture(t, Metricsflow, "ccba/internal/mfix")
}

func TestMetricsflowInsideNetsim(t *testing.T) {
	RunFixture(t, Metricsflow, "ccba/internal/netsim")
}
