package analysis

import (
	"go/ast"
	"go/types"
)

// Obsguard keeps tracing zero-cost when disabled: every emission in the
// engines goes through the nil-guarded obs.Sink methods, whose disabled
// path is a single branch. A direct Tracer.Emit call or a hand-built
// obs.Event literal outside the obs package bypasses that guard — it either
// panics on a nil tracer or silently re-states the per-kind field
// conventions the Sink owns, which is exactly the drift that would break
// the sim ≡ cluster trace equality (DESIGN.md §8, §10).
var Obsguard = &Analyzer{
	Name:      "obsguard",
	Directive: "obs-ok",
	Doc: "trace events are emitted only through the nil-guarded obs.Sink " +
		"methods; direct Tracer.Emit calls and obs.Event literals outside obs " +
		"bypass the disabled-path guard and the event field conventions",
	Run: runObsguard,
}

const obsPath = "ccba/internal/obs"

func runObsguard(p *Pass) {
	if p.Pkg.Path() == obsPath {
		return // the Sink implementation is the one blessed emitter
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(p.Info, n)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != obsPath || fn.Name() != "Emit" {
					return true
				}
				sig := fn.Type().(*types.Signature)
				if sig.Recv() == nil {
					return true
				}
				p.Reportf(n.Pos(), "direct %s.Emit call outside obs: emit through the nil-guarded obs.Sink methods so disabled tracing stays zero-cost",
					recvTypeName(sig))
			case *ast.CompositeLit:
				if len(n.Elts) > 0 && isNamed(p.Info.TypeOf(n), obsPath, "Event") {
					p.Reportf(n.Pos(), "obs.Event constructed outside obs: the Sink methods own the per-kind field conventions")
				}
			}
			return true
		})
	}
}

// recvTypeName names a method's receiver type for diagnostics.
func recvTypeName(sig *types.Signature) string {
	if named := namedType(sig.Recv().Type()); named != nil {
		return named.Obj().Name()
	}
	return "Tracer"
}
