package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named static check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in DESIGN.md §8.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Directive names the `//ccba:<directive> <reason>` escape hatch that
	// waives a finding of this analyzer on the same or the preceding
	// line. The reason string is mandatory: a bare directive does not
	// suppress anything. Empty means findings cannot be waived.
	Directive string
	// Run reports the analyzer's findings on one package via pass.Reportf.
	Run func(pass *Pass)
}

// All returns the full suite in diagnostic order. cmd/ccbavet runs exactly
// this list; DESIGN.md §8 documents exactly this list (docs_test.go pins
// the correspondence).
func All() []*Analyzer {
	return []*Analyzer{Detwalk, Metricsflow, Sizeexact, Powerbound, Ctxfirst, Obsguard, Directives}
}

// A Diagnostic is one finding, positioned for file:line:col display.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files is the package's non-test syntax. Test files are type-checked
	// with the package but never analyzed: the invariants guard the
	// protocol paths, and tests legitimately construct metrics literals,
	// measure wall-clock, and iterate maps.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	diags      *[]Diagnostic
	directives map[string]map[int]*directive // filename → line → directive
}

// directive is one parsed `//ccba:<name> <reason>` comment.
type directive struct {
	name   string
	reason string
	pos    token.Position
}

// directivePrefix starts every escape-hatch comment.
const directivePrefix = "//ccba:"

// splitDirective parses `//ccba:<name> <reason>` into its parts. A nested
// `//` truncates the reason, so a fixture's trailing `// want` marker (or
// any other trailing comment) never counts as audit text.
func splitDirective(text string) (name, reason string) {
	rest := strings.TrimPrefix(text, directivePrefix)
	name, reason, _ = strings.Cut(rest, " ")
	reason, _, _ = strings.Cut(reason, "//")
	return name, strings.TrimSpace(reason)
}

// parseDirectives indexes the `//ccba:` comments of non-test files by
// filename and line so Reportf can honor same-line and preceding-line
// waivers.
func parseDirectives(fset *token.FileSet, files []*ast.File) map[string]map[int]*directive {
	out := map[string]map[int]*directive{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				name, reason := splitDirective(c.Text)
				pos := fset.Position(c.Pos())
				byLine := out[pos.Filename]
				if byLine == nil {
					byLine = map[int]*directive{}
					out[pos.Filename] = byLine
				}
				byLine[pos.Line] = &directive{name: name, reason: reason, pos: pos}
			}
		}
	}
	return out
}

// directiveFor returns the waiver covering a diagnostic at pos, if any: a
// directive on the same line (trailing comment) or alone on the line
// directly above.
func (p *Pass) directiveFor(pos token.Position) *directive {
	byLine := p.directives[pos.Filename]
	if byLine == nil {
		return nil
	}
	if d := byLine[pos.Line]; d != nil {
		return d
	}
	return byLine[pos.Line-1]
}

// Reportf records a finding unless a well-formed matching escape hatch
// covers it. A directive with an empty reason waives nothing — the audit
// trail is the point — and the directive analyzer flags the bare comment
// itself.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if d := p.directiveFor(position); d != nil && d.name == p.Analyzer.Directive && d.reason != "" {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyze runs the analyzers over one loaded package and returns the
// findings sorted by position then analyzer name, so output order is a
// pure function of the source.
func Analyze(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var files []*ast.File
	for _, f := range pkg.Files {
		if !strings.HasSuffix(pkg.Fset.Position(f.Package).Filename, "_test.go") {
			files = append(files, f)
		}
	}
	directives := parseDirectives(pkg.Fset, files)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      files,
			Pkg:        pkg.Types,
			Info:       pkg.Info,
			diags:      &diags,
			directives: directives,
		}
		a.Run(pass)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// --- shared type-query helpers ---

// calleeFunc resolves a call to the package-level function or method
// object it invokes, or nil for indirect calls, conversions, and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}

// isPkgLevelOf reports whether fn is any package-level function of pkgPath.
func isPkgLevelOf(fn *types.Func, pkgPath string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Type().(*types.Signature).Recv() == nil
}

// namedType returns the named type behind t, unwrapping one level of
// pointer, or nil.
func namedType(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isNamed reports whether t (possibly behind a pointer) is the named type
// pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	named := namedType(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// importPath returns the unquoted import path of spec.
func importPath(spec *ast.ImportSpec) string {
	return strings.Trim(spec.Path.Value, `"`)
}
