package analysis

import "testing"

func TestCtxfirstFixture(t *testing.T) {
	RunFixture(t, Ctxfirst, "ccba/internal/cluster")
}

func TestCtxfirstOutOfScope(t *testing.T) {
	RunFixture(t, Ctxfirst, "ccba/internal/ctxneg")
}
