package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed, type-checked package ready for Analyze.
type Package struct {
	Fset  *token.FileSet
	Path  string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// newInfo allocates the types.Info maps every analyzer relies on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Check parses filenames and type-checks them as one package using imp to
// resolve imports. goVersion may be empty. Type errors fail the load: an
// analyzer's silence must mean "invariant holds", never "package did not
// type-check".
func Check(fset *token.FileSet, path, goVersion string, filenames []string, imp types.Importer) (*Package, error) {
	sorted := append([]string(nil), filenames...)
	sort.Strings(sorted)
	files := make([]*ast.File, 0, len(sorted))
	for _, name := range sorted {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	var typeErrs []error
	conf := types.Config{
		Importer:  imp,
		GoVersion: goVersion,
		Sizes:     types.SizesFor("gc", "amd64"),
		Error:     func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("%s: %d type errors, first: %w", path, len(typeErrs), typeErrs[0])
	}
	if err != nil {
		return nil, err
	}
	return &Package{Fset: fset, Path: path, Files: files, Types: tpkg, Info: info}, nil
}

// VetConfig is the JSON configuration `go vet -vettool` hands the checker
// for each package, mirroring cmd/go's vetConfig.
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// VetImporter resolves imports the way the go command compiled them: source
// import paths map through cfg.ImportMap to canonical paths, whose gc
// export data files are listed in cfg.PackageFile.
func VetImporter(fset *token.FileSet, cfg *VetConfig) types.Importer {
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})
}

// CheckVet loads the package a vet config describes. Test files are
// type-checked with the package; Analyze skips them when reporting.
func CheckVet(fset *token.FileSet, cfg *VetConfig) (*Package, error) {
	return Check(fset, cfg.ImportPath, cfg.GoVersion, cfg.GoFiles, VetImporter(fset, cfg))
}

// fixtureImporter loads fixture packages from an analysistest-style
// testdata/src tree. Every import — including stand-ins for std packages
// like "time" or "sort" — must resolve inside root, so fixture loading
// never touches the real build graph.
type fixtureImporter struct {
	root string
	fset *token.FileSet
	pkgs map[string]*types.Package
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := fi.pkgs[path]; ok {
		return pkg, nil
	}
	loaded, err := fi.load(path)
	if err != nil {
		return nil, err
	}
	fi.pkgs[path] = loaded.Types
	return loaded.Types, nil
}

func (fi *fixtureImporter) load(path string) (*Package, error) {
	dir := filepath.Join(fi.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture import %q: %w", path, err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture import %q: no .go files under %s", path, dir)
	}
	return Check(fi.fset, path, "", files, fi)
}

// LoadFixture loads the fixture package at root/<path> (root is a
// testdata/src tree), resolving its imports from the same tree.
func LoadFixture(root, path string) (*Package, error) {
	fi := &fixtureImporter{root: root, fset: token.NewFileSet(), pkgs: map[string]*types.Package{}}
	return fi.load(path)
}
