// Package sort is a fixture stand-in for the standard library's sort
// package (see the time stub for why).
package sort

func Strings(x []string)                    {}
func Ints(x []int)                          {}
func Slice(x any, less func(i, j int) bool) {}
