// Package time is a fixture stand-in for the standard library's time
// package: the analyzers match callees by import path and name, so a stub
// with the right shape exercises them without loading the real std tree.
package time

type Duration int64

const Millisecond Duration = 1000000

type Time struct{ sec int64 }

func (t Time) Add(d Duration) Time { return t }

func Now() Time                             { return Time{} }
func Since(t Time) Duration                 { return 0 }
func Until(t Time) Duration                 { return 0 }
func Sleep(d Duration)                      {}
func After(d Duration) <-chan Time          { return nil }
func AfterFunc(d Duration, f func()) *Timer { return &Timer{} }
func NewTimer(d Duration) *Timer            { return &Timer{} }
func Tick(d Duration) <-chan Time           { return nil }

type Timer struct{ C <-chan Time }

func (t *Timer) Stop() bool { return true }
