// Package context is a fixture stand-in for the standard library's
// context package (see the time stub for why).
package context

type Context interface {
	Done() <-chan struct{}
	Err() error
}
