// Package rand is a fixture stand-in for math/rand (see the time stub for
// why).
package rand

func Intn(n int) int   { return 0 }
func Int63() int64     { return 0 }
func Float64() float64 { return 0 }
