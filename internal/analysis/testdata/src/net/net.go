// Package net is a fixture stand-in for the standard library's net
// package (see the time stub for why).
package net

type Conn interface {
	Close() error
	Write(b []byte) (int, error)
}

func Dial(network, address string) (Conn, error) { return nil, nil }
