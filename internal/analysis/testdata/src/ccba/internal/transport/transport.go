// Package transport is the powerbound fixture: chaos-named files are held
// to the power boundary, the rest of the package is ordinary transport
// plumbing.
package transport

import "ccba/internal/types"

type Envelope struct {
	From  types.NodeID
	Round uint32
	Seq   uint64
}

type Transport interface {
	Send(to types.NodeID, env Envelope) error
}

// pump lives outside a chaos file: channel plumbing is legal here.
func pump(ch chan Envelope, env Envelope) {
	ch <- env
	close(ch)
}
