package transport

import (
	"net" // want `chaos code imports net`
	"time"

	"ccba/internal/netsim"
	"ccba/internal/types"
)

type chaosEndpoint struct {
	inner Transport
	key   uint64
	raw   chan Envelope
}

// Send mixes one legal decision (the LinkDrop coin) with every forbidden
// fault mechanism.
func (c *chaosEndpoint) Send(to types.NodeID, env Envelope) error {
	if netsim.LinkDrop(c.key, int(env.Round), types.NodeID(0), to, 0.5) {
		return nil
	}
	deadline := time.Now() // want `chaos code reads the wall clock via time\.Now`
	_ = deadline
	c.raw <- env // want `raw channel send in chaos code`
	close(c.raw) // want `chaos code closes a channel`
	if conn, err := net.Dial("tcp", "addr"); err == nil {
		conn.Close()
	}
	return c.inner.Send(to, env)
}

// delayed schedules with a timer: scheduling is not a wall-clock read.
func delayed(d time.Duration, f func()) *time.Timer {
	return time.AfterFunc(d, f)
}
