// Package obsfix exercises obsguard: every emission path that bypasses the
// nil-guarded obs.Sink API.
package obsfix

import (
	"ccba/internal/obs"
	"ccba/internal/types"
)

// step is the blessed shape: a value Sink, nil-guarded inside each method.
func step(s obs.Sink, round int, node types.NodeID) {
	s.RoundStart(round, node)
	if s.Enabled() {
		s.Decide(round, node, 1)
	}
}

// direct bypasses the guard at the interface: panics when t is nil.
func direct(t obs.Tracer, round int) {
	t.Emit(obs.Event{Round: int32(round)}) // want `direct Tracer\.Emit call outside obs` `obs\.Event constructed outside obs`
}

// concrete bypasses it on the recorder, and restates field conventions.
func concrete(rec *obs.Recorder) {
	e := obs.Event{Round: 2, Kind: obs.EvDecide} // want `obs\.Event constructed outside obs`
	rec.Emit(e)                                  // want `direct Recorder\.Emit call outside obs`
}

// zero literals carry no field conventions; only the Emit call is flagged.
func zero(rec *obs.Recorder) {
	rec.Emit(obs.Event{}) // want `direct Recorder\.Emit call outside obs`
}

// ownEmit: Emit methods on other types stay free.
type counter struct{ n int }

func (c *counter) Emit(v int) { c.n += v }

func other(c *counter) { c.Emit(3) }

func waived(rec *obs.Recorder, e obs.Event) {
	//ccba:obs-ok replaying a captured event in a debug harness
	rec.Emit(e)
}
