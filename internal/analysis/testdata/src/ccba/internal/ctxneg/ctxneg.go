// Package ctxneg is outside ctxfirst's scope: blocking names without a
// context are fine anywhere but cluster/transport.
package ctxneg

type Options struct{ N int }

func Run(opts Options) error { return nil }

func Recv() (int, error) { return 0, nil }
