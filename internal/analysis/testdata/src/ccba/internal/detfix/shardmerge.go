package detfix

// The sharded shard-merge idiom (netsim sparse stepping): workers fill
// per-shard private buffers indexed by shard number, then a serial loop
// merges them in shard order. No map is ranged and the merge order is the
// slice order, so detwalk reports nothing — this file pins the pattern as
// blessed.

type shardOut struct {
	events []int
}

// shardMerge steps contiguous ID shards on goroutines and merges the
// per-shard buffers serially in shard order: clean.
func shardMerge(n, workers int, step func(lo, hi int) []int) []int {
	per := (n + workers - 1) / workers
	outs := make([]shardOut, workers)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		lo, hi := w*per, (w+1)*per
		if hi > n {
			hi = n
		}
		go func(w, lo, hi int) {
			outs[w] = shardOut{events: step(lo, hi)}
			done <- struct{}{}
		}(w, lo, hi)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	var merged []int
	for w := range outs { // slice range: shard order is the merge order
		merged = append(merged, outs[w].events...)
	}
	return merged
}

// shardMergeByMap keys the same per-shard buffers by shard number in a map
// and merges by ranging it: the merge order is Go's randomized map order,
// exactly the bug the slice-indexed idiom exists to prevent.
func shardMergeByMap(outs map[int]shardOut) []int {
	var merged []int
	for _, o := range outs { // want `range over map in deterministic package`
		merged = append(merged, o.events...)
	}
	return merged
}
