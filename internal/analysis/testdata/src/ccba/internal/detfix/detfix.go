// Package detfix exercises detwalk: wall-clock reads, global math/rand,
// and map iteration in a deterministic package.
package detfix

import (
	"math/rand" // want `deterministic package ccba/internal/detfix imports math/rand`
	"sort"
	"time"
)

var state []string

func clock() time.Time {
	return time.Now() // want `call to time\.Now in deterministic package`
}

func nap(d time.Duration) {
	time.Sleep(d) // want `call to time\.Sleep in deterministic package`
}

func arm(d time.Duration, f func()) *time.Timer {
	return time.AfterFunc(d, f) // want `call to time\.AfterFunc in deterministic package`
}

func draw() int { return rand.Intn(6) }

// feed leaks map order into package state: the append target is never
// sorted in this function.
func feed(m map[string]int) {
	for k := range m { // want `range over map in deterministic package`
		state = append(state, k)
	}
}

// sortedKeys is the blessed collect-then-sort idiom: no finding.
func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// sortedPairs collects both key and value and sorts with sort.Slice.
func sortedPairs(m map[string]int) []int {
	vals := make([]int, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// audited carries a reasoned escape hatch: suppressed.
func audited(m map[string]int) int {
	n := 0
	//ccba:nondeterministic-ok commutative count, order cannot escape
	for range m {
		n++
	}
	return n
}

// unaudited has a bare directive: a waiver without a reason waives
// nothing.
func unaudited(m map[string]int) int {
	n := 0
	//ccba:nondeterministic-ok
	for range m { // want `range over map in deterministic package`
		n++
	}
	return n
}
