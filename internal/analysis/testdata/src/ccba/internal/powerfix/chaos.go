package powerfix

// A chaos-named file outside transport/cluster is not chaos code: raw
// channel plumbing here is ordinary Go.
func pump(ch chan int, v int) {
	ch <- v
	close(ch)
}
