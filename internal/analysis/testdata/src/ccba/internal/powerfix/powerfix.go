// Package powerfix exercises powerbound's repo-wide rule: the drop coin
// netsim.LinkDrop belongs to the model layer and the chaos wrapper only.
package powerfix

import (
	"ccba/internal/netsim"
	"ccba/internal/types"
)

func decide(key uint64, round int, from, to types.NodeID) bool {
	return netsim.LinkDrop(key, round, from, to, 0.5) // want `call to netsim\.LinkDrop outside the model layer`
}
