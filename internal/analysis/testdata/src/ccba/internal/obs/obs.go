// Package obs is a fixture stand-in for ccba/internal/obs: the event
// record, the tracer interface, the nil-guarded sink, and the ring
// recorder. Its own Sink bodies call t.Emit and build Event literals —
// obsguard must stay silent inside the package.
package obs

import "ccba/internal/types"

type EventKind uint8

const (
	EvRoundStart EventKind = 1 + iota
	EvDecide
)

type Event struct {
	Round int32
	Node  int32
	Seq   uint32
	Kind  EventKind
	A, B  int32
}

type Tracer interface {
	Emit(Event)
}

type Sink struct{ t Tracer }

func NewSink(t Tracer) Sink { return Sink{t: t} }

func (s Sink) Enabled() bool { return s.t != nil }

func (s Sink) RoundStart(round int, node types.NodeID) {
	if s.t == nil {
		return
	}
	s.t.Emit(Event{Round: int32(round), Node: int32(node), Kind: EvRoundStart})
}

func (s Sink) Decide(round int, node types.NodeID, bit types.Bit) {
	if s.t == nil {
		return
	}
	s.t.Emit(Event{Round: int32(round), Node: int32(node), Kind: EvDecide, A: int32(bit)})
}

type Recorder struct{ events []Event }

func NewRecorder(capacity int) *Recorder { return &Recorder{} }

func (r *Recorder) Emit(e Event) { r.events = append(r.events, e) }
