// Package mfix exercises metricsflow: every write path to netsim.Metrics
// fields outside the type's own methods.
package mfix

import (
	"ccba/internal/netsim"
	"ccba/internal/types"
)

// stats has a field of the same name as the metrics struct's: fields of
// other types stay free.
type stats struct{ HonestMessages int }

func account(m *netsim.Metrics, n, size int) {
	m.CountSend(types.Broadcast, n, size)
	m.HonestMessages++           // want `direct \+\+ of netsim\.Metrics\.HonestMessages`
	m.HonestMessageBytes += size // want `direct write to netsim\.Metrics\.HonestMessageBytes`
	m.HonestMulticasts = 3       // want `direct write to netsim\.Metrics\.HonestMulticasts`
	p := &m.HonestMessages       // want `taking the address of netsim\.Metrics\.HonestMessages`
	_ = p
}

func literal() netsim.Metrics {
	return netsim.Metrics{HonestMessages: 8} // want `netsim\.Metrics constructed with explicit fields`
}

func fresh() netsim.Metrics { return netsim.Metrics{} }

func read(m netsim.Metrics) int { return m.HonestMessages }

func ownType(s *stats) { s.HonestMessages++ }

func aggregate(dst *netsim.Metrics, src netsim.Metrics) { dst.Add(src) }

func waived(m *netsim.Metrics) {
	//ccba:metrics-ok replaying a decoded snapshot in a bench helper
	m.HonestMessages = 1
}
