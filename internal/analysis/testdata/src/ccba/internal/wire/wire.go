// Package wire is a fixture stand-in for ccba/internal/wire.
package wire

type Kind uint8
