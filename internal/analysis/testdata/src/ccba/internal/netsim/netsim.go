// Package netsim is a fixture stand-in for ccba/internal/netsim: the
// accounting struct with its blessed mutation methods, and the seeded
// drop coin. It doubles as the metricsflow fixture for the rule that even
// inside netsim only Metrics methods may write the fields (badwrite.go).
package netsim

import "ccba/internal/types"

type Metrics struct {
	HonestMulticasts     int
	HonestMulticastBytes int
	HonestMessages       int
	HonestMessageBytes   int
}

func (m *Metrics) CountSend(to types.NodeID, n, size int) {
	if to == types.Broadcast {
		m.HonestMulticasts++
		m.HonestMulticastBytes += size
		m.HonestMessages += n
		m.HonestMessageBytes += n * size
	} else {
		m.HonestMessages++
		m.HonestMessageBytes += size
	}
}

func (m *Metrics) Add(other Metrics) {
	m.HonestMulticasts += other.HonestMulticasts
	m.HonestMulticastBytes += other.HonestMulticastBytes
	m.HonestMessages += other.HonestMessages
	m.HonestMessageBytes += other.HonestMessageBytes
}

func LinkDrop(key uint64, round int, from, to types.NodeID, rate float64) bool { return false }

func Mix64(x uint64) uint64 { return x }
