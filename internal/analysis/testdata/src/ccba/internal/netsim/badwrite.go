package netsim

// resetHelper is package netsim but not a Metrics method: the write is
// outside the blessed accounting surface and must be flagged.
func resetHelper(m *Metrics) {
	m.HonestMessages = 0 // want `direct write to netsim\.Metrics\.HonestMessages`
}
