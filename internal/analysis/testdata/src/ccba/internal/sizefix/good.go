// Package sizefix exercises sizeexact: the wire surface of one message —
// struct declaration, Encode, Size, Kind — must share a file.
package sizefix

import "ccba/internal/wire"

type GoodMsg struct{ V uint8 }

func (m GoodMsg) Kind() wire.Kind          { return 1 }
func (m GoodMsg) Encode(dst []byte) []byte { return append(dst, m.V) }
func (m GoodMsg) Size() int                { return 1 }
