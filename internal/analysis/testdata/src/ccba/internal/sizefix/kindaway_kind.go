package sizefix

import "ccba/internal/wire"

func (m KindMsg) Kind() wire.Kind { return 2 } // want `KindMsg\.Kind is in kindaway_kind\.go but KindMsg\.Encode is in kindaway\.go`
