package sizefix

func (m SplitMsg) Size() int { return 8 } // want `SplitMsg\.Size is in split_size\.go but SplitMsg\.Encode is in split\.go`
