package sizefix

func (m StrayMsg) Encode(dst []byte) []byte { return dst } // want `StrayMsg\.Encode is in stray_codec\.go but the StrayMsg declaration is in stray\.go`

func (m StrayMsg) Size() int { return 4 }
