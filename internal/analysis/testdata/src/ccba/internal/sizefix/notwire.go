package sizefix

// Helper has an Encode but no Size: not a wire message, its layout is
// free.
type Helper struct{ X int }

func (h Helper) Encode(dst []byte) []byte { return dst }
