package sizefix

type KindMsg struct{ K uint8 }

func (m KindMsg) Encode(dst []byte) []byte { return append(dst, m.K) }

func (m KindMsg) Size() int { return 1 }
