package sizefix

type SplitMsg struct{ A, B uint32 }

func (m SplitMsg) Encode(dst []byte) []byte { return dst }
