package sizefix

// Sized has a Size but no Encode in another file: still not a message.
func (h Helper) Stats() int { return h.X }
