package sizefix

type StrayMsg struct{ N uint32 }
