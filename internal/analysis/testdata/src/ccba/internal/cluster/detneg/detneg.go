// Package detneg lives under the cluster tree, outside detwalk's scope:
// live-runtime code measures wall-clock time and drains maps in cleanup
// paths legitimately. No findings expected.
package detneg

import "time"

func Elapsed(start time.Time) time.Duration { return time.Since(start) }

func Keys(m map[int]bool) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}
