// Package cluster is the ctxfirst fixture: exported blocking APIs take a
// context.Context first.
package cluster

import "context"

type Options struct{ N int }

func Run(ctx context.Context, opts Options) error { return nil }

func RunNode(opts Options, ctx context.Context) error { return nil } // want `RunNode takes a context\.Context in position 1`

func RunAll(opts Options) error { return nil } // want `exported blocking API RunAll has no context\.Context`

// Runner is not a blocking verb: "Run" must end the word.
func Runner() int { return 0 }

// helper is unexported: the rule governs the public surface.
func helper(opts Options, ctx context.Context) { _ = ctx }

type Mesh interface {
	Recv(ctx context.Context) (int, error)
	Connect(addr string) error // want `exported blocking API Connect has no context\.Context`
	Close() error
}

func DialMesh(ctx context.Context, addr string) (Mesh, error) { return nil, nil }

// waived documents an audited exception.
//
//ccba:ctx-ok wraps a non-blocking pure lookup, misnamed for history
func RunLookup(opts Options) int { return opts.N }
