// Package types is a fixture stand-in for ccba/internal/types.
package types

type NodeID int32

const Broadcast NodeID = -1

type Bit uint8
