// Package dirfix exercises the directive analyzer: escape hatches must
// name a known waiver and carry a reason.
package dirfix

//ccba:nondeterministic-ok keys sorted below, audited 2026-08
var a = 1

//ccba:frobnicate-ok whatever // want `unknown //ccba: directive "frobnicate-ok"`
var b = 2

//ccba:metrics-ok // want `//ccba:metrics-ok needs a reason`
var c = 3

// ordinary comments mentioning ccba: mid-text are not directives.
var d = a + b + c
