package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Detwalk forbids nondeterminism sources in the packages whose behaviour
// must be a pure function of (config, seed): the lockstep engine, the
// protocol state machines, the scenario registry, and the trial harness.
// Every cross-runtime equivalence claim in the repo — live ≡ sim at Δ=1,
// serial ≡ parallel, sparse ≡ dense, chaos replay — rests on those
// packages never reading wall-clock time, global randomness, or Go's
// randomized map iteration order into protocol state (DESIGN.md §5, §8).
//
// Audited sites opt out with `//ccba:nondeterministic-ok <reason>`.
var Detwalk = &Analyzer{
	Name:      "detwalk",
	Directive: "nondeterministic-ok",
	Doc: "forbid wall-clock reads, global math/rand, and unsorted map iteration " +
		"in the deterministic packages",
	Run: runDetwalk,
}

// detwalkTimeFuncs are the package-level time functions that read the wall
// clock or schedule on it. time.Duration arithmetic and time.Time
// formatting stay legal: values, not clocks.
var detwalkTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "NewTimer": true, "NewTicker": true,
	"Tick": true,
}

// detwalkExcluded subtrees host live I/O or wall-clock measurement by
// design: transports dial and time out, the cluster runtime arms real
// deadlines, experiments report wall-clock columns, and the analysis
// tooling itself is not protocol code.
var detwalkExcluded = []string{
	"ccba/internal/transport",
	"ccba/internal/cluster",
	"ccba/internal/experiments",
	"ccba/internal/analysis",
}

// detwalkScoped reports whether the package at path carries the
// determinism obligation.
func detwalkScoped(path string) bool {
	if path != "ccba" && !strings.HasPrefix(path, "ccba/internal/") {
		return false
	}
	for _, ex := range detwalkExcluded {
		if path == ex || strings.HasPrefix(path, ex+"/") {
			return false
		}
	}
	return true
}

func runDetwalk(p *Pass) {
	if !detwalkScoped(p.Pkg.Path()) {
		return
	}
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			switch importPath(imp) {
			case "math/rand", "math/rand/v2":
				p.Reportf(imp.Pos(), "deterministic package %s imports %s: derive randomness from the seeded coins (prf, netsim.Mix64)", p.Pkg.Path(), importPath(imp))
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(p.Info, n)
				if isPkgLevelOf(fn, "time") && detwalkTimeFuncs[fn.Name()] {
					p.Reportf(n.Pos(), "call to time.%s in deterministic package %s: wall-clock values must not feed protocol state", fn.Name(), p.Pkg.Path())
				}
			case *ast.RangeStmt:
				t := p.Info.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if collectedAndSorted(p, f, n) {
					return true
				}
				p.Reportf(n.Pos(), "range over map in deterministic package %s: iteration order is randomized — sort the keys before use", p.Pkg.Path())
			}
			return true
		})
	}
}

// collectedAndSorted recognizes the one blessed map-iteration idiom: a
// loop whose body only appends keys/values to local slices, each of which
// the same function later passes to a sort (or slices) call. The iteration
// order never escapes, so the randomization cannot either.
func collectedAndSorted(p *Pass, file *ast.File, rng *ast.RangeStmt) bool {
	targets := map[types.Object]bool{}
	for _, stmt := range rng.Body.List {
		obj := appendTarget(p.Info, stmt)
		if obj == nil {
			return false
		}
		targets[obj] = true
	}
	if len(targets) == 0 {
		return false
	}
	fn := enclosingFunc(file, rng)
	if fn == nil {
		return false
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		callee := calleeFunc(p.Info, call)
		if !isPkgLevelOf(callee, "sort") && !isPkgLevelOf(callee, "slices") {
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if obj := p.Info.ObjectOf(id); targets[obj] {
				delete(targets, obj)
			}
		}
		return true
	})
	return len(targets) == 0
}

// appendTarget returns the object of s's append target when stmt has the
// exact shape `s = append(s, ...)`, else nil.
func appendTarget(info *types.Info, stmt ast.Stmt) types.Object {
	assign, ok := stmt.(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return nil
	}
	lhs, ok := ast.Unparen(assign.Lhs[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil
	}
	fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fun.Name != "append" {
		return nil
	}
	if _, isBuiltin := info.Uses[fun].(*types.Builtin); !isBuiltin {
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	first, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok || first.Name != lhs.Name {
		return nil
	}
	obj := info.ObjectOf(lhs)
	if obj == nil || obj != info.ObjectOf(first) {
		return nil
	}
	return obj
}

// enclosingFunc returns the function declaration of file whose body
// contains n, or nil.
func enclosingFunc(file *ast.File, n ast.Node) *ast.FuncDecl {
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		if fn.Body.Pos() <= n.Pos() && n.End() <= fn.Body.End() {
			return fn
		}
	}
	return nil
}
