package analysis

import (
	"sort"
	"strings"
)

// Directives audits the escape hatches themselves: every `//ccba:`
// comment must name a known waiver and carry a non-empty reason, so each
// suppressed finding leaves a reviewable audit trail. A bare directive
// suppresses nothing (Pass.Reportf ignores it) and is flagged here.
var Directives = &Analyzer{
	Name: "directive",
	Doc: "every //ccba: escape hatch must name a known directive and give a " +
		"reason for the audit trail",
	Run: runDirectives,
}

// knownDirectives maps each waiver to the analyzer it silences. The list
// is spelled out (not derived from All) to avoid an initialization cycle
// through the Directives analyzer itself.
func knownDirectives() map[string]string {
	out := map[string]string{}
	for _, a := range []*Analyzer{Detwalk, Metricsflow, Sizeexact, Powerbound, Ctxfirst} {
		if a.Directive != "" {
			out[a.Directive] = a.Name
		}
	}
	return out
}

func runDirectives(p *Pass) {
	known := knownDirectives()
	names := make([]string, 0, len(known))
	for name := range known {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				name, reason := splitDirective(c.Text)
				if _, ok := known[name]; !ok {
					p.Reportf(c.Pos(), "unknown //ccba: directive %q (known: %s)", name, strings.Join(names, ", "))
					continue
				}
				if reason == "" {
					p.Reportf(c.Pos(), "//ccba:%s needs a reason: the audit trail is the point of the escape hatch", name)
				}
			}
		}
	}
}
