package analysis

import (
	"go/ast"
	"path/filepath"
	"strings"
)

// Powerbound polices the adversary's power boundary in the chaos layer.
// The simulator only ever drops traffic through the seeded coin
// netsim.LinkDrop after the power checks admit the omission (≤F faulty
// senders, honest links delivered within Δ). Live fault injection must
// flip exactly the same coin — that is what makes a Δ=1 chaos run
// bit-identical to the simulated schedule — so:
//
//   - netsim.LinkDrop may only be called from the netsim model layer and
//     the chaos transport wrapper; a protocol or runtime package flipping
//     the drop coin would grant itself adversary powers;
//   - chaos code (files named *chaos*.go in transport/cluster) may not
//     reach for raw fault mechanisms: no channel sends or closes, no
//     direct net connections, no wall-clock reads or math/rand — every
//     drop, delay, and reorder decision must derive from the spec's
//     seeded coins and flow through the wrapped Transport (DESIGN.md §7–§8).
var Powerbound = &Analyzer{
	Name:      "powerbound",
	Directive: "power-ok",
	Doc: "faults may only be injected via the blessed netsim.LinkDrop/power-check " +
		"entry points, never raw channel or connection manipulation",
	Run: runPowerbound,
}

// linkDropAllowed reports whether a call to netsim.LinkDrop is legal at
// path/filename: inside the model layer itself, or in the chaos transport
// wrapper.
func linkDropAllowed(path, filename string) bool {
	if path == netsimPath {
		return true
	}
	return path == "ccba/internal/transport" && strings.Contains(filepath.Base(filename), "chaos")
}

// chaosFile reports whether the file hosts live fault-injection code.
func chaosFile(path, filename string) bool {
	if path != "ccba/internal/transport" && path != "ccba/internal/cluster" {
		return false
	}
	return strings.Contains(filepath.Base(filename), "chaos")
}

func runPowerbound(p *Pass) {
	path := p.Pkg.Path()
	for _, f := range p.Files {
		filename := p.Fset.Position(f.Package).Filename
		inChaos := chaosFile(path, filename)
		if inChaos {
			for _, imp := range f.Imports {
				switch importPath(imp) {
				case "net":
					p.Reportf(imp.Pos(), "chaos code imports net: faults are injected by wrapping the Transport, never by touching connections")
				case "math/rand", "math/rand/v2":
					p.Reportf(imp.Pos(), "chaos code imports %s: fault decisions must come from the spec's seeded coins (netsim.LinkDrop, netsim.Mix64)", importPath(imp))
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(p.Info, n)
				if isPkgFunc(fn, netsimPath, "LinkDrop") && !linkDropAllowed(path, filename) {
					p.Reportf(n.Pos(), "call to netsim.LinkDrop outside the model layer and the chaos transport wrapper: the drop coin is the adversary's, not the protocol's")
				}
				if !inChaos {
					return true
				}
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
					p.Reportf(n.Pos(), "chaos code closes a channel: crash faults are omission windows over the wrapped Transport, not torn-down plumbing")
				}
				if isPkgLevelOf(fn, "time") && (fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until") {
					p.Reportf(n.Pos(), "chaos code reads the wall clock via time.%s: fault decisions must be a pure function of (seed, round, from, to)", fn.Name())
				}
			case *ast.SendStmt:
				if inChaos {
					p.Reportf(n.Pos(), "raw channel send in chaos code: deliver through the wrapped Transport so the power checks stay in the path")
				}
			}
			return true
		})
	}
}
