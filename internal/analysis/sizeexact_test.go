package analysis

import "testing"

func TestSizeexactFixture(t *testing.T) {
	RunFixture(t, Sizeexact, "ccba/internal/sizefix")
}
