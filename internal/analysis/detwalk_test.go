package analysis

import "testing"

func TestDetwalkFixture(t *testing.T) {
	RunFixture(t, Detwalk, "ccba/internal/detfix")
}

func TestDetwalkOutOfScope(t *testing.T) {
	RunFixture(t, Detwalk, "ccba/internal/cluster/detneg")
}
