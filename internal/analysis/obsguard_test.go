package analysis

import "testing"

func TestObsguardFixture(t *testing.T) {
	RunFixture(t, Obsguard, "ccba/internal/obsfix")
}

func TestObsguardInsideObs(t *testing.T) {
	RunFixture(t, Obsguard, "ccba/internal/obs")
}
