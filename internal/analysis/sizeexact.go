package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

// Sizeexact keeps the wire.Message contract reviewable: Size() must return
// exactly len(Encode(nil)) — Definition 6's byte accounting depends on it —
// and the only reliable reviewing aid is adjacency. For every type with
// both an Encode and a Size method, the two methods and the type
// declaration itself must live in the same file, so a field added to a
// message struct puts its Encode and Size in the same diff hunk for
// review (DESIGN.md §8).
var Sizeexact = &Analyzer{
	Name:      "sizeexact",
	Directive: "size-ok",
	Doc: "every wire message's Size, Encode, and struct declaration must share " +
		"one file so size/encoding changes are reviewed together",
	Run: runSizeexact,
}

func runSizeexact(p *Pass) {
	type methodSite struct {
		file string
		pos  ast.Node
	}
	typeFile := map[types.Object]string{}               // named type → declaring file
	methods := map[types.Object]map[string]methodSite{} // named type → method name → site

	for _, f := range p.Files {
		filename := p.Fset.Position(f.Package).Filename
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range decl.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if obj := p.Info.ObjectOf(ts.Name); obj != nil {
						typeFile[obj] = filename
					}
				}
			case *ast.FuncDecl:
				if decl.Recv == nil || len(decl.Recv.List) != 1 {
					continue
				}
				name := decl.Name.Name
				if name != "Encode" && name != "Size" && name != "Kind" {
					continue
				}
				named := namedType(p.Info.TypeOf(decl.Recv.List[0].Type))
				if named == nil {
					continue
				}
				obj := types.Object(named.Obj())
				if methods[obj] == nil {
					methods[obj] = map[string]methodSite{}
				}
				methods[obj][name] = methodSite{file: filename, pos: decl.Name}
			}
		}
	}

	for obj, ms := range methods {
		encode, hasEncode := ms["Encode"]
		size, hasSize := ms["Size"]
		if !hasEncode || !hasSize {
			continue // not a wire message; nothing to keep adjacent
		}
		if size.file != encode.file {
			p.Reportf(size.pos.Pos(), "%s.Size is in %s but %s.Encode is in %s: Size() must equal len(Encode(nil)), keep them in one file",
				obj.Name(), filepath.Base(size.file), obj.Name(), filepath.Base(encode.file))
		}
		if declFile, ok := typeFile[obj]; ok && declFile != encode.file {
			p.Reportf(encode.pos.Pos(), "%s.Encode is in %s but the %s declaration is in %s: a field change must flag Encode and Size in the same file",
				obj.Name(), filepath.Base(encode.file), obj.Name(), filepath.Base(declFile))
		}
		if kind, ok := ms["Kind"]; ok && kind.file != encode.file {
			p.Reportf(kind.pos.Pos(), "%s.Kind is in %s but %s.Encode is in %s: keep the wire surface of one message in one file",
				obj.Name(), filepath.Base(kind.file), obj.Name(), filepath.Base(encode.file))
		}
	}
}
