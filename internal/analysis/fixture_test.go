package analysis

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The analysistest contract, reimplemented over LoadFixture: a fixture
// package under testdata/src annotates the lines where an analyzer must
// fire with `// want "regexp"` comments. RunFixture fails the test if any
// finding lacks a matching want on its line, or any want goes unmatched.

// want is one expected diagnostic.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile(`// want (.*)$`)

// parseWants extracts the `// want "re" ["re" ...]` expectations from a
// fixture package's comments. Each expectation anchors to its line.
func parseWants(pkg *Package) ([]*want, error) {
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, field := range splitQuoted(m[1]) {
					raw, err := strconv.Unquote(field)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: malformed want %s: %v", pos.Filename, pos.Line, field, err)
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	return wants, nil
}

// splitQuoted splits `"a" "b c"` into quoted fields. Both double-quoted
// and backquoted fields are accepted; backquotes spare the fixtures a
// layer of escaping around regexp metacharacters.
func splitQuoted(s string) []string {
	var out []string
	for {
		i := strings.IndexAny(s, "\"`")
		if i < 0 {
			return out
		}
		quote := s[i]
		s = s[i:]
		j := 1
		for j < len(s) && (s[j] != quote || (quote == '"' && s[j-1] == '\\')) {
			j++
		}
		if j >= len(s) {
			return out
		}
		out = append(out, s[:j+1])
		s = s[j+1:]
	}
}

// RunFixture loads testdata/src/<path> and checks analyzer a's findings
// against the fixture's expectations.
func RunFixture(t *testing.T, a *Analyzer, path string) {
	t.Helper()
	pkg, err := LoadFixture("testdata/src", path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}
	wants, err := parseWants(pkg)
	if err != nil {
		t.Fatal(err)
	}
	diags := Analyze(pkg, []*Analyzer{a})
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}
