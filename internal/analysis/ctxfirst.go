package analysis

import (
	"go/ast"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Ctxfirst standardizes the cancellation surface of the live runtime: in
// the cluster and transport packages, every exported function or method
// that takes a context.Context takes it first, and every exported API
// whose name says it blocks (Run*, Dial*, Recv*, Connect*, Listen*) must
// take one. PR 4's shutdown story — cancellation threaded from the CLI
// through the synchronizer into every Recv — only composes if no blocking
// call sits outside it (DESIGN.md §8).
var Ctxfirst = &Analyzer{
	Name:      "ctxfirst",
	Directive: "ctx-ok",
	Doc: "exported blocking APIs in cluster/transport take a context.Context " +
		"as their first parameter",
	Run: runCtxfirst,
}

// ctxfirstBlocking are the name prefixes that promise a blocking call.
var ctxfirstBlocking = []string{"Run", "Dial", "Recv", "Connect", "Listen"}

func ctxfirstScoped(path string) bool {
	return path == "ccba/internal/cluster" || path == "ccba/internal/transport"
}

// blockingName reports whether name starts with a blocking verb as a full
// camel-case word ("RunNode", "Recv" — but not "Runner").
func blockingName(name string) bool {
	for _, prefix := range ctxfirstBlocking {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		rest := name[len(prefix):]
		if rest == "" {
			return true
		}
		r, _ := utf8.DecodeRuneInString(rest)
		if unicode.IsUpper(r) || unicode.IsDigit(r) {
			return true
		}
	}
	return false
}

func runCtxfirst(p *Pass) {
	if !ctxfirstScoped(p.Pkg.Path()) {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				if decl.Name.IsExported() {
					checkCtxParams(p, decl.Name.Name, decl.Type)
				}
			case *ast.GenDecl:
				for _, spec := range decl.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					iface, ok := ts.Type.(*ast.InterfaceType)
					if !ok {
						continue
					}
					for _, field := range iface.Methods.List {
						ft, ok := field.Type.(*ast.FuncType)
						if !ok {
							continue // embedded interface
						}
						for _, name := range field.Names {
							if name.IsExported() {
								checkCtxParams(p, name.Name, ft)
							}
						}
					}
				}
			}
		}
	}
}

// checkCtxParams applies both rules to one exported function, method, or
// interface method signature.
func checkCtxParams(p *Pass, name string, ft *ast.FuncType) {
	ctxIndex := -1
	idx := 0
	if ft.Params != nil {
		for _, field := range ft.Params.List {
			n := len(field.Names)
			if n == 0 {
				n = 1
			}
			if ctxIndex < 0 && isNamed(p.Info.TypeOf(field.Type), "context", "Context") {
				ctxIndex = idx
			}
			idx += n
		}
	}
	switch {
	case ctxIndex > 0:
		p.Reportf(ft.Pos(), "%s takes a context.Context in position %d: cancellation is the first parameter of every exported cluster/transport API", name, ctxIndex)
	case ctxIndex < 0 && blockingName(name):
		p.Reportf(ft.Pos(), "exported blocking API %s has no context.Context: every blocking cluster/transport call must be cancellable", name)
	}
}
