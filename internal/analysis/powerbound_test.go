package analysis

import "testing"

func TestPowerboundChaosFile(t *testing.T) {
	RunFixture(t, Powerbound, "ccba/internal/transport")
}

func TestPowerboundLinkDropMisuse(t *testing.T) {
	RunFixture(t, Powerbound, "ccba/internal/powerfix")
}
