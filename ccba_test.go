package ccba

import (
	"testing"

	"ccba/internal/netsim"
)

func TestRunAllProtocolsDefaults(t *testing.T) {
	cases := []Config{
		{Protocol: Core, N: 100, F: 30, Lambda: 30},
		{Protocol: Core, N: 60, F: 15, Lambda: 24, Crypto: Real},
		{Protocol: CoreBroadcast, N: 80, F: 20, Lambda: 24},
		{Protocol: Quadratic, N: 25, F: 12},
		{Protocol: PhaseKingPlain, N: 16, F: 5},
		{Protocol: PhaseKingSampled, N: 90, F: 20, Lambda: 30},
		{Protocol: ChenMicali, N: 90, F: 20, Lambda: 30, Erasure: true},
		{Protocol: DolevStrong, N: 16, F: 5},
		{Protocol: CommitteeEcho, N: 64, F: 0},
	}
	for _, cfg := range cases {
		cfg := cfg
		t.Run(string(cfg.Protocol)+"/"+string(cfg.Crypto), func(t *testing.T) {
			rep, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Ok() {
				t.Fatalf("properties violated: consistency=%v validity=%v termination=%v",
					rep.Consistency, rep.Validity, rep.Termination)
			}
		})
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := Config{Protocol: Core, N: 80, F: 20, Lambda: 24, Seed: [32]byte{7}}
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Rounds != r2.Rounds || r1.Result.Metrics != r2.Result.Metrics {
		t.Fatal("identical configs produced different executions")
	}
	for i := range r1.Outputs {
		if r1.Outputs[i] != r2.Outputs[i] {
			t.Fatalf("output %d differs", i)
		}
	}
}

func TestRunParallelMatchesSequential(t *testing.T) {
	base := Config{Protocol: Core, N: 80, F: 20, Lambda: 24, Seed: [32]byte{9}}
	seq, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	par := base
	par.Parallel = true
	got, err := Run(par)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Rounds != got.Rounds || seq.Result.Metrics != got.Result.Metrics {
		t.Fatal("parallel execution diverged from sequential")
	}
}

func TestRunUnknownProtocol(t *testing.T) {
	if _, err := Run(Config{Protocol: "nope", N: 4, F: 1}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestRunUnknownCryptoMode(t *testing.T) {
	if _, err := Run(Config{Protocol: Core, N: 40, F: 10, Crypto: "quantum"}); err == nil {
		t.Fatal("unknown crypto mode accepted")
	}
}

func TestRunTrials(t *testing.T) {
	cfg := Config{Protocol: Core, N: 80, F: 20, Lambda: 24}
	st, err := RunTrials(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.Violations != 0 {
		t.Fatalf("%d violations", st.Violations)
	}
	if st.MeanRounds <= 0 || st.MeanMulticasts <= 0 {
		t.Fatalf("degenerate stats: %+v", st)
	}
	if st.Rounds.N != 4 || st.Rounds.Mean != st.MeanRounds {
		t.Fatalf("summary disagrees with headline mean: %+v", st)
	}
	if !(st.ViolationLo == 0 && st.ViolationHi > 0 && st.ViolationHi < 1) {
		t.Fatalf("Wilson interval [%v, %v] implausible for 0/4", st.ViolationLo, st.ViolationHi)
	}
	if _, err := RunTrials(cfg, 0); err == nil {
		t.Fatal("zero trials accepted")
	}
}

// TestRunTrialsSeedIndependence checks trials actually vary: with the old
// XOR-two-bytes derivation, base seeds differing only in byte 31 produced
// overlapping trial sequences; hash derivation must not.
func TestRunTrialsSeedIndependence(t *testing.T) {
	cfg := Config{Protocol: Core, N: 80, F: 20, Lambda: 24}
	var a, b []Metrics
	capture := func(dst *[]Metrics) func(int, *Report) {
		return func(_ int, rep *Report) { *dst = append(*dst, rep.Result.Metrics) }
	}
	if _, err := RunTrialsOpts(cfg, TrialOpts{Trials: 3, OnReport: capture(&a)}); err != nil {
		t.Fatal(err)
	}
	shifted := cfg
	shifted.Seed[31] ^= 1 // old derivation would replay trial t of cfg as trial t^1
	if _, err := RunTrialsOpts(shifted, TrialOpts{Trials: 3, OnReport: capture(&b)}); err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		for j := range b {
			if a[i] == b[j] {
				same++
			}
		}
	}
	if same > 0 {
		t.Fatalf("%d trial executions shared between base seeds differing in one byte", same)
	}
}

// TestRunTrialsDeterministicAcrossWorkers is the serial-vs-parallel
// determinism contract on the public API: aggregates are bit-identical for
// any worker count.
func TestRunTrialsDeterministicAcrossWorkers(t *testing.T) {
	cfg := Config{Protocol: Core, N: 80, F: 20, Lambda: 24, Seed: [32]byte{3}}
	serial, err := RunTrialsOpts(cfg, TrialOpts{Trials: 6, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunTrialsOpts(cfg, TrialOpts{Trials: 6, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if *serial != *parallel {
		t.Fatalf("aggregates diverge:\nworkers=1: %+v\nworkers=8: %+v", serial, parallel)
	}
}

// countingAdversary is deliberately stateful: it silences f nodes only on
// its second Setup call. Under the old RunTrials, which reused one instance
// across trials, trials ≥ 1 would run with corruptions trial 0 never saw;
// with a per-trial factory every instance must see exactly one Setup.
type countingAdversary struct {
	netsim.Passive
	setups int
}

func (a *countingAdversary) Setup(ctx *netsim.Ctx) {
	a.setups++
	if a.setups < 2 {
		return
	}
	for i := 0; i < ctx.F(); i++ {
		if _, err := ctx.Corrupt(NodeID(i)); err != nil {
			return
		}
	}
}

func TestRunTrialsAdversaryIsolation(t *testing.T) {
	cfg := Config{Protocol: Core, N: 80, F: 20, Lambda: 24}

	// The shared-instance API is the bug; it must be rejected.
	shared := cfg
	shared.Adversary = &countingAdversary{}
	if _, err := RunTrials(shared, 3); err == nil {
		t.Fatal("shared adversary instance accepted across trials")
	}

	var made []*countingAdversary
	var corrupted []int
	_, err := RunTrialsOpts(cfg, TrialOpts{
		Trials: 4,
		NewAdversary: func(int) Adversary {
			a := &countingAdversary{}
			made = append(made, a)
			return a
		},
		OnReport: func(_ int, rep *Report) { corrupted = append(corrupted, rep.NumCorrupt()) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(made) != 4 {
		t.Fatalf("factory built %d adversaries for 4 trials", len(made))
	}
	for i, a := range made {
		if a.setups != 1 {
			t.Fatalf("adversary %d saw %d Setup calls; state leaked across trials", i, a.setups)
		}
	}
	for i, c := range corrupted {
		if c != 0 {
			t.Fatalf("trial %d corrupted %d nodes; a reused instance reached its second Setup", i, c)
		}
	}
}

// TestRunTrialsInputIsolation checks each trial receives its own copy of the
// caller's input slice rather than aliasing it.
func TestRunTrialsInputIsolation(t *testing.T) {
	cfg := Config{Protocol: Core, N: 60, F: 15, Lambda: 24}
	cfg.Inputs = make([]Bit, cfg.N)
	for i := range cfg.Inputs {
		cfg.Inputs[i] = One
	}
	orig := append([]Bit(nil), cfg.Inputs...)
	seen := map[*Bit]bool{&cfg.Inputs[0]: true}
	_, err := RunTrialsOpts(cfg, TrialOpts{
		Trials: 3,
		OnReport: func(trial int, rep *Report) {
			if len(rep.Inputs) == 0 {
				t.Fatalf("trial %d lost its inputs", trial)
			}
			if seen[&rep.Inputs[0]] {
				t.Fatalf("trial %d aliases another trial's input slice", trial)
			}
			seen[&rep.Inputs[0]] = true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if cfg.Inputs[i] != orig[i] {
			t.Fatalf("caller's input slice mutated at %d", i)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Protocol: Core, N: 0, F: 0},
		{Protocol: Core, N: -5, F: 0},
		{Protocol: Core, N: 10, F: -1},
		{Protocol: Core, N: 10, F: 10},
		{Protocol: Core, N: 10, F: 12},
		{Protocol: Core, N: 10, F: 3, Inputs: make([]Bit, 9)},
		{Protocol: Core, N: 10, F: 3, Inputs: make([]Bit, 11)},
	}
	for _, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
		if _, err := RunTrials(cfg, 2); err == nil {
			t.Errorf("config %+v accepted by RunTrials", cfg)
		}
	}
	// Broadcast protocols ignore Inputs; a mismatched slice is not an error.
	if _, err := Run(Config{Protocol: DolevStrong, N: 10, F: 3, Inputs: make([]Bit, 4)}); err != nil {
		t.Errorf("broadcast protocol rejected unused inputs: %v", err)
	}
}

func TestCommitteeSizeDefaults(t *testing.T) {
	// The default-derivation details (committee size ≥ 1 at every N, capped
	// below n) are pinned in internal/scenario's own tests; here the public
	// contract: the committee excludes its sender, so a single node cannot
	// form one, and that must surface as a descriptive error, not an empty
	// committee (or the selection loop spinning forever).
	if _, err := Run(Config{Protocol: CommitteeEcho, N: 1, F: 0}); err == nil {
		t.Error("single-node committee echo accepted")
	}
	// The smallest valid instance runs.
	if _, err := Run(Config{Protocol: CommitteeEcho, N: 2, F: 0}); err != nil {
		t.Errorf("two-node committee echo failed: %v", err)
	}
}

func TestBroadcastSenderInput(t *testing.T) {
	cfg := Config{Protocol: DolevStrong, N: 10, F: 3, SenderInput: One}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range rep.ForeverHonest() {
		if rep.Outputs[id] != One {
			t.Fatalf("node %d output %v, want sender input 1", id, rep.Outputs[id])
		}
	}
	// The zero value means broadcasting bit 0.
	rep, err = Run(Config{Protocol: DolevStrong, N: 10, F: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range rep.ForeverHonest() {
		if rep.Outputs[id] != Zero {
			t.Fatalf("node %d output %v, want default sender input 0", id, rep.Outputs[id])
		}
	}
}

func TestAdversaryPlumbing(t *testing.T) {
	// A static silencer passed through the facade must actually corrupt.
	cfg := Config{Protocol: Core, N: 100, F: 30, Lambda: 30, Adversary: &facadeSilencer{}}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("silencer broke safety: %v %v %v", rep.Consistency, rep.Validity, rep.Termination)
	}
	if got := rep.NumCorrupt(); got != 30 {
		t.Fatalf("corrupted %d nodes, want 30", got)
	}
}

type facadeSilencer struct{ netsim.Passive }

func (s *facadeSilencer) Setup(ctx *netsim.Ctx) {
	for i := 0; i < ctx.F(); i++ {
		if _, err := ctx.Corrupt(NodeID(i)); err != nil {
			return
		}
	}
}

func TestProtocolBroadcastClassification(t *testing.T) {
	if Core.Broadcast() || Quadratic.Broadcast() || PhaseKingPlain.Broadcast() {
		t.Fatal("agreement protocol classified as broadcast")
	}
	if !DolevStrong.Broadcast() || !CommitteeEcho.Broadcast() || !CoreBroadcast.Broadcast() {
		t.Fatal("broadcast protocol misclassified")
	}
}
