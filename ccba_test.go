package ccba

import (
	"testing"

	"ccba/internal/netsim"
)

func TestRunAllProtocolsDefaults(t *testing.T) {
	cases := []Config{
		{Protocol: Core, N: 100, F: 30, Lambda: 30},
		{Protocol: Core, N: 60, F: 15, Lambda: 24, Crypto: Real},
		{Protocol: CoreBroadcast, N: 80, F: 20, Lambda: 24},
		{Protocol: Quadratic, N: 25, F: 12},
		{Protocol: PhaseKingPlain, N: 16, F: 5},
		{Protocol: PhaseKingSampled, N: 90, F: 20, Lambda: 30},
		{Protocol: ChenMicali, N: 90, F: 20, Lambda: 30, Erasure: true},
		{Protocol: DolevStrong, N: 16, F: 5},
		{Protocol: CommitteeEcho, N: 64, F: 0},
	}
	for _, cfg := range cases {
		cfg := cfg
		t.Run(string(cfg.Protocol)+"/"+string(cfg.Crypto), func(t *testing.T) {
			rep, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Ok() {
				t.Fatalf("properties violated: consistency=%v validity=%v termination=%v",
					rep.Consistency, rep.Validity, rep.Termination)
			}
		})
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := Config{Protocol: Core, N: 80, F: 20, Lambda: 24, Seed: [32]byte{7}}
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Rounds != r2.Rounds || r1.Result.Metrics != r2.Result.Metrics {
		t.Fatal("identical configs produced different executions")
	}
	for i := range r1.Outputs {
		if r1.Outputs[i] != r2.Outputs[i] {
			t.Fatalf("output %d differs", i)
		}
	}
}

func TestRunParallelMatchesSequential(t *testing.T) {
	base := Config{Protocol: Core, N: 80, F: 20, Lambda: 24, Seed: [32]byte{9}}
	seq, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	par := base
	par.Parallel = true
	got, err := Run(par)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Rounds != got.Rounds || seq.Result.Metrics != got.Result.Metrics {
		t.Fatal("parallel execution diverged from sequential")
	}
}

func TestRunUnknownProtocol(t *testing.T) {
	if _, err := Run(Config{Protocol: "nope", N: 4, F: 1}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestRunUnknownCryptoMode(t *testing.T) {
	if _, err := Run(Config{Protocol: Core, N: 40, F: 10, Crypto: "quantum"}); err == nil {
		t.Fatal("unknown crypto mode accepted")
	}
}

func TestRunTrials(t *testing.T) {
	cfg := Config{Protocol: Core, N: 80, F: 20, Lambda: 24}
	st, err := RunTrials(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.Violations != 0 {
		t.Fatalf("%d violations", st.Violations)
	}
	if st.MeanRounds <= 0 || st.MeanMulticasts <= 0 {
		t.Fatalf("degenerate stats: %+v", st)
	}
	if _, err := RunTrials(cfg, 0); err == nil {
		t.Fatal("zero trials accepted")
	}
}

func TestBroadcastSenderInput(t *testing.T) {
	cfg := Config{Protocol: DolevStrong, N: 10, F: 3, SenderInput: One}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range rep.ForeverHonest() {
		if rep.Outputs[id] != One {
			t.Fatalf("node %d output %v, want sender input 1", id, rep.Outputs[id])
		}
	}
	// The zero value means broadcasting bit 0.
	rep, err = Run(Config{Protocol: DolevStrong, N: 10, F: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range rep.ForeverHonest() {
		if rep.Outputs[id] != Zero {
			t.Fatalf("node %d output %v, want default sender input 0", id, rep.Outputs[id])
		}
	}
}

func TestAdversaryPlumbing(t *testing.T) {
	// A static silencer passed through the facade must actually corrupt.
	cfg := Config{Protocol: Core, N: 100, F: 30, Lambda: 30, Adversary: &facadeSilencer{}}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("silencer broke safety: %v %v %v", rep.Consistency, rep.Validity, rep.Termination)
	}
	if got := rep.NumCorrupt(); got != 30 {
		t.Fatalf("corrupted %d nodes, want 30", got)
	}
}

type facadeSilencer struct{ netsim.Passive }

func (s *facadeSilencer) Setup(ctx *netsim.Ctx) {
	for i := 0; i < ctx.F(); i++ {
		if _, err := ctx.Corrupt(NodeID(i)); err != nil {
			return
		}
	}
}

func TestProtocolBroadcastClassification(t *testing.T) {
	if Core.Broadcast() || Quadratic.Broadcast() || PhaseKingPlain.Broadcast() {
		t.Fatal("agreement protocol classified as broadcast")
	}
	if !DolevStrong.Broadcast() || !CommitteeEcho.Broadcast() || !CoreBroadcast.Broadcast() {
		t.Fatal("broadcast protocol misclassified")
	}
}
