package ccba

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"ccba/internal/analysis"
)

// Documentation integrity checks, run by the CI docs-check job (and by the
// ordinary test suite, so a dangling citation fails locally too):
//
//   - every `DESIGN.md §N` citation in Go sources and markdown resolves to
//     a `## §N` section of DESIGN.md;
//   - markdown files carry no `[[...]]`-style placeholder references;
//   - relative links in markdown files point at files that exist.

// docsFiles walks the repository (skipping .git and testdata) and returns
// the files with one of the given extensions.
func docsFiles(t *testing.T, exts ...string) []string {
	t.Helper()
	var out []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || name == "node_modules" {
				return filepath.SkipDir
			}
			return nil
		}
		for _, ext := range exts {
			if strings.HasSuffix(path, ext) {
				out = append(out, path)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatalf("no %v files found — walk broken?", exts)
	}
	return out
}

// TestDesignReferencesResolve pins every in-code `DESIGN.md §N` citation to
// an existing section.
func TestDesignReferencesResolve(t *testing.T) {
	design, err := os.ReadFile("DESIGN.md")
	if err != nil {
		t.Fatalf("DESIGN.md must exist — the code cites it: %v", err)
	}
	sections := map[string]bool{}
	heading := regexp.MustCompile(`(?m)^## §(\d+)`)
	for _, m := range heading.FindAllStringSubmatch(string(design), -1) {
		sections[m[1]] = true
	}
	if len(sections) == 0 {
		t.Fatal("DESIGN.md has no '## §N' sections")
	}

	cite := regexp.MustCompile(`DESIGN\.md §(\d+)`)
	for _, path := range docsFiles(t, ".go", ".md") {
		if filepath.Base(path) == "docs_test.go" {
			continue // the patterns above would match themselves
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range cite.FindAllStringSubmatch(string(data), -1) {
			if !sections[m[1]] {
				t.Errorf("%s cites DESIGN.md §%s, but DESIGN.md has no '## §%s' section", path, m[1], m[1])
			}
		}
	}
}

// TestNoPlaceholderReferences rejects `[[...]]`-style wiki placeholders in
// markdown — the marker used while drafting a doc for links that were
// never filled in.
func TestNoPlaceholderReferences(t *testing.T) {
	placeholder := regexp.MustCompile(`\[\[[^\]]*\]\]`)
	for _, path := range docsFiles(t, ".md") {
		if path == "ISSUE.md" {
			continue // the task statement mentions the pattern by name
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			if m := placeholder.FindString(line); m != "" {
				t.Errorf("%s:%d: placeholder reference %q", path, i+1, m)
			}
		}
	}
}

// TestMarkdownRelativeLinks checks that every relative markdown link
// resolves to an existing file (http(s)/mailto and pure-anchor links are
// skipped; anchors on relative links are stripped before checking).
func TestMarkdownRelativeLinks(t *testing.T) {
	link := regexp.MustCompile(`\]\(([^)\s]+)\)`)
	for _, path := range docsFiles(t, ".md") {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range link.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
					strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
					continue
				}
				target, _, _ = strings.Cut(target, "#")
				resolved := filepath.Join(filepath.Dir(path), target)
				if _, err := os.Stat(resolved); err != nil {
					t.Errorf("%s:%d: broken relative link %q (%v)", path, i+1, m[1], err)
				}
			}
		}
	}
}

// TestDesignCoversEveryPackage keeps the doc.go convention honest: every
// internal package must carry a doc.go whose package comment points into
// DESIGN.md.
func TestDesignCoversEveryPackage(t *testing.T) {
	seen := map[string]bool{}
	for _, path := range docsFiles(t, ".go") {
		if !strings.HasPrefix(path, "internal"+string(filepath.Separator)) {
			continue
		}
		seen[filepath.Dir(path)] = seen[filepath.Dir(path)] || filepath.Base(path) == "doc.go"
	}
	for dir, hasDoc := range seen {
		if !hasDoc {
			t.Errorf("%s has no doc.go (package docs with a DESIGN.md pointer live there)", dir)
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, "doc.go"))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), "DESIGN.md §") {
			t.Errorf("%s/doc.go does not point into DESIGN.md", dir)
		}
	}
	if len(seen) < 20 {
		t.Fatalf("only %d internal packages discovered — walk broken?", len(seen))
	}
}

// TestDesignSectionEightCoversAnalyzers pins DESIGN.md §8 to the ccbavet
// analyzer set: every analyzer the multichecker runs must be named and
// documented there, so adding an analyzer without writing down the
// invariant it guards fails the suite.
func TestDesignSectionEightCoversAnalyzers(t *testing.T) {
	design, err := os.ReadFile("DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	_, section, found := strings.Cut(string(design), "\n## §8")
	if !found {
		t.Fatal("DESIGN.md has no '## §8' section")
	}
	if next := strings.Index(section, "\n## §"); next >= 0 {
		section = section[:next]
	}
	for _, a := range analysis.All() {
		if !strings.Contains(section, "**"+a.Name+"**") {
			t.Errorf("DESIGN.md §8 does not document analyzer %q", a.Name)
		}
		if a.Directive != "" && !strings.Contains(string(design), a.Directive) {
			t.Errorf("DESIGN.md never mentions %q, analyzer %s's escape hatch", a.Directive, a.Name)
		}
	}
}
