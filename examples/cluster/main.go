// Live cluster: run the paper's subquadratic Byzantine Agreement protocol
// as 64 concurrent node goroutines over the in-process channel transport,
// cross-check the result against the lockstep simulator, and then run a
// 4-node agreement over a real localhost TCP mesh with the Appendix D
// real-crypto compiler.
//
//	go run ./examples/cluster
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ccba"
	"ccba/internal/cluster"
	"ccba/internal/transport"
)

func main() {
	ctx := context.Background()

	// 1. A 64-node core agreement, live: one goroutine per node, messages
	// crossing the transport as canonical wire bytes, rounds synchronized
	// by per-round barriers instead of a lockstep loop.
	cfg := ccba.Config{Protocol: ccba.Core, N: 64, F: 19, Lambda: 14}
	cfg.Seed[0] = 42

	chanNet, err := transport.NewChanNetwork(cfg.N)
	if err != nil {
		log.Fatal(err)
	}
	defer chanNet.Close()
	live, err := cluster.Run(ctx, cfg, chanNet, cluster.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("live chan cluster:  rounds=%d multicasts=%d ok=%v\n",
		live.Rounds, live.Result.Metrics.HonestMulticasts, live.Ok())

	// The simulator is the oracle: the same config and seed must produce
	// the same decisions and the same communication accounting.
	sim, err := ccba.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lockstep simulator: rounds=%d multicasts=%d ok=%v\n",
		sim.Rounds, sim.Result.Metrics.HonestMulticasts, sim.Ok())
	if live.Rounds != sim.Rounds || live.Result.Metrics != sim.Result.Metrics {
		log.Fatal("live run diverged from the simulator")
	}
	for i := range sim.Outputs {
		if live.Outputs[i] != sim.Outputs[i] || live.Decided[i] != sim.Decided[i] {
			log.Fatalf("node %d decided differently live vs simulated", i)
		}
	}
	fmt.Println("bit-for-bit agreement on every protocol-visible fact")

	// Per-node accounting comes free in a live run: each node tallies its
	// own sends. Summed, the tallies equal the simulator's aggregate.
	busiest, count := 0, 0
	for i, m := range live.PerNode {
		if m.HonestMulticasts > count {
			busiest, count = i, m.HonestMulticasts
		}
	}
	fmt.Printf("busiest node: %d with %d multicasts (committees stay small: λ=%d)\n\n",
		busiest, count, cfg.Lambda)

	// 2. The same protocol over real TCP sockets. The hybrid world's F_mine
	// trusted party lives inside one process, so multi-process meshes use
	// the real-crypto compiler (Ed25519 VRF over the seed-derived PKI) —
	// here the whole mesh runs in-process, but over genuine localhost
	// connections with length-prefixed framing.
	tcpCfg := ccba.Config{Protocol: ccba.Core, N: 4, F: 1, Lambda: 3, Crypto: ccba.Real}
	tcpCfg.Seed[0] = 42
	tcpNet, err := transport.NewTCPNetwork(ctx, transport.LoopbackAddrs(tcpCfg.N), transport.TCPOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer tcpNet.Close()
	tcpRep, err := cluster.Run(ctx, tcpCfg, tcpNet, cluster.Options{RoundTimeout: 30 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tcp mesh (n=%d, real crypto): rounds=%d ok=%v\n", tcpCfg.N, tcpRep.Rounds, tcpRep.Ok())
}
