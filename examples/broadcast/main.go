// Broadcast: the §1.1 reduction — Byzantine Broadcast from Byzantine
// Agreement with one extra round and one extra multicast — run over the
// subquadratic core protocol, with an equivocating corrupt sender trying to
// split the network.
//
//	go run ./examples/broadcast
package main

import (
	"fmt"
	"log"

	"ccba"
	"ccba/internal/broadcast"
	"ccba/internal/netsim"
)

// equivocator corrupts the sender and sends bit 0 to the low half of the
// network and bit 1 to the high half.
type equivocator struct{}

func (equivocator) Power() netsim.Power { return netsim.PowerStatic }
func (equivocator) Setup(ctx *netsim.Ctx) {
	if _, err := ctx.Corrupt(0); err != nil {
		panic(err)
	}
}
func (equivocator) Round(ctx *netsim.Ctx) {
	if ctx.Round() != 0 {
		return
	}
	for i := 1; i < ctx.N(); i++ {
		b := ccba.Zero
		if i >= ctx.N()/2 {
			b = ccba.One
		}
		if err := ctx.Inject(0, ccba.NodeID(i), broadcast.InputMsg{B: b}); err != nil {
			panic(err)
		}
	}
}

func main() {
	// Honest sender: everyone outputs the sender's bit.
	rep, err := ccba.Run(ccba.Config{
		Protocol: ccba.CoreBroadcast, N: 200, F: 60, Lambda: 40,
		SenderInput: ccba.One,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("honest sender broadcasting 1:   rounds=%d  multicasts=%d  %s\n",
		rep.Rounds, rep.Result.Metrics.HonestMulticasts, verdict(rep))

	// Equivocating sender: half the nodes hear 0, half hear 1 — the
	// underlying BA still forces a single output.
	rep, err = ccba.Run(ccba.Config{
		Protocol: ccba.CoreBroadcast, N: 200, F: 60, Lambda: 40,
		SenderInput: ccba.Zero, Adversary: equivocator{},
	})
	if err != nil {
		log.Fatal(err)
	}
	counts := map[ccba.Bit]int{}
	for _, id := range rep.ForeverHonest() {
		if rep.Decided[id] {
			counts[rep.Outputs[id]]++
		}
	}
	fmt.Printf("equivocating corrupt sender:    rounds=%d  outputs=%v  %s\n",
		rep.Rounds, counts, verdict(rep))
	fmt.Println()
	fmt.Println("The reduction preserves sublinear multicast complexity: the paper states")
	fmt.Println("upper bounds for BA and lower bounds for BB precisely because this wrapper")
	fmt.Println("costs one multicast.")
}

func verdict(rep *ccba.Report) string {
	if rep.Ok() {
		return "consistency ✓ validity ✓ termination ✓"
	}
	return fmt.Sprintf("VIOLATED: %v %v %v", rep.Consistency, rep.Validity, rep.Termination)
}
