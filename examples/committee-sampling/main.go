// Committee-sampling: the eligibility-election machinery of §3.2 in
// isolation. Every node privately evaluates its VRF on (Vote, r, b); the
// winners form that message's committee. The demo shows:
//
//   - committee sizes concentrate around λ (the Chernoff engine behind
//     Lemma 11);
//
//   - eligibility for bit 0 is independent of eligibility for bit 1 — the
//     bit-specificity that defeats adaptive corruption;
//
//   - proposal difficulty 1/(2n) yields a unique leader in roughly 1/e of
//     iterations (Lemma 12).
//
//     go run ./examples/committee-sampling
package main

import (
	"fmt"

	"ccba/internal/core"
	"ccba/internal/crypto/pki"
	"ccba/internal/fmine"
	"ccba/internal/types"
)

func main() {
	const (
		n      = 1000
		lambda = 40
		iters  = 200
	)
	var seed [32]byte
	seed[0] = 42
	pub, secrets := pki.Setup(n, seed)
	suite := fmine.NewReal(pub, secrets, core.Probabilities(n, lambda))

	fmt.Printf("n=%d nodes, λ=%d expected committee, real Ed25519 VRF eligibility\n\n", n, lambda)

	// Committee size concentration across iterations.
	var sizes []int
	both, eligible0 := 0, 0
	uniqueLeaders := 0
	for iter := uint32(1); iter <= iters; iter++ {
		size0, size1 := 0, 0
		proposers := 0
		for id := 0; id < n; id++ {
			m := suite.Miner(types.NodeID(id))
			_, ok0 := m.Mine(core.VoteTag(iter, types.Zero))
			_, ok1 := m.Mine(core.VoteTag(iter, types.One))
			if ok0 {
				size0++
				eligible0++
			}
			if ok1 {
				size1++
			}
			if ok0 && ok1 {
				both++
			}
			if _, ok := m.Mine(core.ProposeTag(iter, types.Zero)); ok {
				proposers++
			}
			if _, ok := m.Mine(core.ProposeTag(iter, types.One)); ok {
				proposers++
			}
		}
		sizes = append(sizes, size0)
		if proposers == 1 {
			uniqueLeaders++
		}
	}

	mean, minSize, maxSize := 0.0, sizes[0], sizes[0]
	for _, s := range sizes {
		mean += float64(s)
		if s < minSize {
			minSize = s
		}
		if s > maxSize {
			maxSize = s
		}
	}
	mean /= float64(len(sizes))
	fmt.Printf("committee size for (Vote, r, 0): mean %.1f (target λ=%d), min %d, max %d over %d iterations\n",
		mean, lambda, minSize, maxSize, iters)

	// Bit independence: P[eligible for both] ≈ P[0]·P[1] = (λ/n)².
	pBoth := float64(both) / float64(n*iters)
	p0 := float64(eligible0) / float64(n*iters)
	fmt.Printf("bit-specificity: P[eligible for 0] = %.4f, P[eligible for both bits] = %.4f (independence predicts %.4f)\n",
		p0, pBoth, p0*p0)

	fmt.Printf("unique proposer per iteration: %.1f%% of iterations (Lemma 12 predicts > 1/e ≈ 36.8%%)\n",
		100*float64(uniqueLeaders)/float64(iters))

	// Verification: anyone can check a ticket against the PKI.
	m := suite.Miner(7)
	if proof, ok := m.Mine(core.VoteTag(1, types.Zero)); ok {
		valid := suite.Verifier().Verify(core.VoteTag(1, types.Zero), 7, proof)
		fmt.Printf("node 7 holds a (Vote, 1, 0) ticket; public verification → %v\n", valid)
	} else {
		fmt.Println("node 7 is not in the (Vote, 1, 0) committee — and nobody can tell until it speaks")
	}
}
