// Adaptive-attack: the paper's §3.3 Remark as a runnable demonstration.
//
// The same weakly adaptive quorum-flip adversary — watch an honest node ACK
// bit b, corrupt it, and try to make it ACK 1−b in the same round — is
// mounted against three eligibility designs:
//
//  1. bit-free tickets, no erasure (the Chen–Micali strawman): the corrupted
//     node's (ACK, r) ticket remains valid for the other bit, so the attack
//     converts a 1-quorum into a 0-quorum and splits the honest outputs;
//
//  2. bit-free tickets + memory erasure (Chen–Micali's fix): the ephemeral
//     epoch key is gone, each forgery dies at the signing step;
//
//  3. bit-specific tickets (this paper's fix): there is nothing to reuse —
//     the adversary must mine an independent (ACK, r, 1−b) coin, which
//     almost never comes up heads.
//
//     go run ./examples/adaptive-attack
package main

import (
	"fmt"
	"log"

	"ccba"
	"ccba/internal/chenmicali"
	"ccba/internal/phaseking"
)

const (
	n      = 150
	f      = 50
	lambda = 40
	epochs = 8
)

func victims() []ccba.NodeID {
	out := make([]ccba.NodeID, 0, n/2)
	for i := n / 2; i < n; i++ {
		out = append(out, ccba.NodeID(i))
	}
	return out
}

func unanimousOne() []ccba.Bit {
	in := make([]ccba.Bit, n)
	for i := range in {
		in[i] = ccba.One
	}
	return in
}

func main() {
	fmt.Println("§3.3 Remark: one attack, three eligibility designs")
	fmt.Println()

	// Design 1: bit-free tickets, no erasure.
	attack1 := &chenmicali.FlipAttack{TargetEpoch: epochs - 1, Victims: victims()}
	rep, err := ccba.Run(ccba.Config{
		Protocol: ccba.ChenMicali, N: n, F: f, Lambda: lambda, Epochs: epochs,
		Inputs: unanimousOne(), Adversary: attack1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1. bit-free tickets, no erasure:   forged=%d  → %s\n",
		attack1.Forged, verdict(rep))

	// Design 2: bit-free tickets + memory erasure.
	attack2 := &chenmicali.FlipAttack{TargetEpoch: epochs - 1, Victims: victims()}
	rep, err = ccba.Run(ccba.Config{
		Protocol: ccba.ChenMicali, N: n, F: f, Lambda: lambda, Epochs: epochs,
		Erasure: true, Inputs: unanimousOne(), Adversary: attack2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2. bit-free + memory erasure:      forged=%d (blocked %d) → %s\n",
		attack2.Forged, attack2.SignFailures, verdict(rep))

	// Design 3: bit-specific tickets (the paper's key insight).
	attack3 := &phaseking.FlipAttack{TargetEpoch: epochs - 1, Victims: victims()}
	rep, err = ccba.Run(ccba.Config{
		Protocol: ccba.PhaseKingSampled, N: n, F: f, Lambda: lambda, Epochs: epochs,
		Inputs: unanimousOne(), Adversary: attack3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3. bit-specific tickets:           corrupted=%d, opposite-bit coins won=%d → %s\n",
		attack3.Attempts, attack3.Mined, verdict(rep))

	fmt.Println()
	fmt.Println("Design 1 breaks; designs 2 and 3 hold. The paper's contribution is that")
	fmt.Println("design 3 needs neither memory erasure nor random oracles.")
}

func verdict(rep *ccba.Report) string {
	if rep.Ok() {
		return "safety HELD"
	}
	return "safety BROKEN (" + firstErr(rep) + ")"
}

func firstErr(rep *ccba.Report) string {
	switch {
	case rep.Consistency != nil:
		return rep.Consistency.Error()
	case rep.Validity != nil:
		return rep.Validity.Error()
	default:
		return rep.Termination.Error()
	}
}
