// Quickstart: run the paper's subquadratic Byzantine Agreement protocol
// (Appendix C.2) among 300 simulated nodes, 90 of them silently corrupt,
// first in the F_mine-hybrid world and then with real crypto (Ed25519 VRF
// eligibility over a trusted PKI).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ccba"
	"ccba/internal/netsim"
)

// silencer statically corrupts the first f nodes; they never speak.
type silencer struct{ netsim.Passive }

func (s *silencer) Setup(ctx *netsim.Ctx) {
	for i := 0; i < ctx.F(); i++ {
		if _, err := ctx.Corrupt(ccba.NodeID(i)); err != nil {
			return
		}
	}
}

func main() {
	for _, mode := range []ccba.CryptoMode{ccba.Ideal, ccba.Real} {
		n := 300
		if mode == ccba.Real {
			n = 120 // Ed25519 is ~100× slower than the hybrid world's HMAC
		}
		cfg := ccba.Config{
			Protocol:  ccba.Core,
			N:         n,
			F:         n * 3 / 10, // f = 0.3n < (1/2−ε)n
			Lambda:    40,         // expected committee size, ω(log κ)
			Crypto:    mode,
			Adversary: &silencer{},
		}
		rep, err := ccba.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("core BA, crypto=%-5s n=%-4d f=%-3d → rounds=%-2d multicasts=%-4d (%.1f KB total, vs %d nodes)\n",
			mode, cfg.N, cfg.F, rep.Rounds,
			rep.Result.Metrics.HonestMulticasts,
			float64(rep.Result.Metrics.HonestMulticastBytes)/1024,
			cfg.N)
		if !rep.Ok() {
			log.Fatalf("security properties violated: %v %v %v",
				rep.Consistency, rep.Validity, rep.Termination)
		}
		fmt.Printf("  consistency ✓  validity ✓  termination ✓ — only ~λ committee members spoke per round\n")
	}
}
