package ccba

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"ccba/internal/cluster"
	"ccba/internal/obs"
	"ccba/internal/transport"
)

// The trace goldens extend the fixed-seed goldens one level down: not just
// the end state, but the canonical JSONL of every round-lifecycle event
// (DESIGN.md §10). The digest below pins the core-ideal-n80 trace; every
// execution regime — serial, parallel dense stepping, sharded sparse
// stepping at either worker count, and the live chan cluster at Δ=1 — must
// reproduce it byte for byte, which is what makes cmd/tracediff's
// line-by-line alignment sound.
const traceGoldenDigest = "7dbfcf95599988a9"

// traceJSONL runs cfg in the simulator with a fresh recorder attached and
// returns the exported canonical JSONL.
func traceJSONL(t *testing.T, cfg Config) []byte {
	t.Helper()
	rec := obs.NewRecorder(0)
	cfg.Tracer = rec
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("violation: consistency=%v validity=%v termination=%v",
			rep.Consistency, rep.Validity, rep.Termination)
	}
	if rec.Dropped() != 0 {
		t.Fatalf("recorder dropped %d events", rec.Dropped())
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func traceDigest(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])[:16]
}

func TestTraceGoldenAcrossEngines(t *testing.T) {
	base := goldenCases[0].cfg // core-ideal-n80
	base.Seed[0] = 7
	serial := traceJSONL(t, base)
	if got := traceDigest(serial); got != traceGoldenDigest {
		t.Errorf("serial trace digest = %s, want golden %s", got, traceGoldenDigest)
	}
	variants := []struct {
		name string
		mut  func(*Config)
	}{
		{"parallel", func(c *Config) { c.Parallel = true }},
		{"sparse-w1", func(c *Config) { c.Sparse = true; c.SparseWorkers = 1 }},
		{"sparse-w4", func(c *Config) { c.Sparse = true; c.SparseWorkers = 4 }},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			cfg := base
			v.mut(&cfg)
			got := traceJSONL(t, cfg)
			if !bytes.Equal(got, serial) {
				t.Errorf("%s trace differs from serial (%d vs %d bytes); debug with cmd/tracediff",
					v.name, len(got), len(serial))
			}
		})
	}
}

func TestTraceClusterMatchesSim(t *testing.T) {
	cfg := goldenCases[0].cfg
	cfg.Seed[0] = 7
	sim := traceJSONL(t, cfg)

	rec := obs.NewRecorder(0)
	netw, err := transport.NewChanNetwork(cfg.N)
	if err != nil {
		t.Fatal(err)
	}
	defer netw.Close()
	rep, err := cluster.Run(context.Background(), cfg, netw, cluster.Options{Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("violation: consistency=%v validity=%v termination=%v",
			rep.Consistency, rep.Validity, rep.Termination)
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), sim) {
		t.Errorf("cluster trace differs from sim (%d vs %d bytes); debug with cmd/tracediff",
			buf.Len(), len(sim))
	}
}

// Tracing must not perturb the execution it observes: the traced run's end
// state still matches the fixed-seed golden.
func TestTraceDoesNotPerturbGolden(t *testing.T) {
	tc := goldenCases[0]
	cfg := tc.cfg
	cfg.Seed[0] = 7
	cfg.Tracer = obs.NewRecorder(0)
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := outputsDigest(rep); got != tc.outputs {
		t.Errorf("outputs digest = %s, want golden %s", got, tc.outputs)
	}
	if rep.Rounds != tc.rounds {
		t.Errorf("rounds = %d, want golden %d", rep.Rounds, tc.rounds)
	}
	if rep.Metrics != tc.metrics {
		t.Errorf("metrics = %+v, want golden %+v", rep.Metrics, tc.metrics)
	}
}
