// Command attack mounts the paper's lower-bound adversaries interactively.
// Victim protocols are constructed through the ccba scenario/builder
// registries; the flip attack resolves the registered "flip" adversary.
//
//	attack -kind strong -n 64 -f 20        # Theorem 1: Dolev–Reischuk A/A′
//	attack -kind strong -protocol dolevstrong -n 24 -f 8
//	attack -kind nosetup -n 256            # Theorem 3: Q—1—Q′ split world
//	attack -kind flip -n 150               # §3.3 Remark: quorum flip
package main

import (
	"flag"
	"fmt"
	"os"

	"ccba"
	"ccba/internal/chenmicali"
	"ccba/internal/lowerbound/nosetup"
	"ccba/internal/lowerbound/strongadaptive"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "attack:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("attack", flag.ContinueOnError)
	var (
		kind     = fs.String("kind", "strong", "attack: strong (Thm 1), nosetup (Thm 3), flip (§3.3 Remark)")
		protocol = fs.String("protocol", "committee", "victim for -kind strong: committee or dolevstrong")
		n        = fs.Int("n", 64, "number of nodes")
		f        = fs.Int("f", 20, "corruption budget")
		c        = fs.Int("committee", 6, "committee size (committee protocol)")
		seed     = fs.Int64("seed", 1, "random seed")
		erasure  = fs.Bool("erasure", false, "memory-erasure model (flip attack)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var seedBytes [32]byte
	seedBytes[0] = byte(*seed)
	seedBytes[1] = byte(*seed >> 8)

	switch *kind {
	case "strong":
		return strongAttack(*protocol, *n, *f, *c, seedBytes)
	case "nosetup":
		return nosetupAttack(*n, *c, seedBytes)
	case "flip":
		return flipAttack(*n, *f, *erasure, seedBytes)
	default:
		return fmt.Errorf("unknown attack kind %q", *kind)
	}
}

func strongAttack(protocol string, n, f, c int, seed [32]byte) error {
	var victim ccba.Config
	rounds := 10
	switch protocol {
	case "committee":
		victim = ccba.Config{Protocol: ccba.CommitteeEcho, N: n, F: f, CommitteeSize: c, Seed: seed}
	case "dolevstrong":
		victim = ccba.Config{Protocol: ccba.DolevStrong, N: n, F: f, Seed: seed}
		rounds = f + 4
	default:
		return fmt.Errorf("unknown victim %q", protocol)
	}
	out, err := strongadaptive.Run(strongadaptive.Config{
		N: n, F: f, Sender: 0, MaxRounds: rounds, Seed: seed, NewNodes: ccba.VictimFactory(victim),
	})
	if err != nil {
		return err
	}
	fmt.Printf("Theorem 1 attack — strongly adaptive Dolev–Reischuk A/A′ vs %s (n=%d, f=%d)\n", protocol, n, f)
	fmt.Printf("  silent output β:          %v (sender broadcasts %v)\n", out.SilentOutput, out.SilentOutput.Flip())
	fmt.Printf("  honest messages under A:  %d   [(f/4)² reference bound: %d]\n",
		out.HonestMessages, (f/4)*(f/4))
	fmt.Printf("  messages addressed to V:  %d\n", out.MessagesToV)
	fmt.Printf("  validity violated by A:   %v (A is omission-only; expected false)\n", out.ValidityViolatedA)
	fmt.Printf("  isolated node p:          %d, |S(p)| = %d, received %d messages\n",
		out.P, out.SendersToP, out.ReceivedByP)
	fmt.Printf("  corruptions used by A′:   %d / %d (budget exhausted: %v)\n",
		out.CorruptionsAPrime, f, out.BudgetExhausted)
	fmt.Printf("  p output:                 %v\n", out.POutput)
	fmt.Printf("  CONSISTENCY VIOLATED:     %v\n", out.ConsistencyViolatedAPrime)
	return nil
}

func nosetupAttack(n, c int, seed [32]byte) error {
	// Both worlds share the CRS and differ only in the sender's input; each
	// world's node set comes out of the builder registry.
	newNode, err := ccba.SplitWorlds(ccba.Config{
		Protocol: ccba.CommitteeEcho, N: n, F: 0, CommitteeSize: c, Seed: seed,
	})
	if err != nil {
		return err
	}
	out, err := nosetup.Run(nosetup.Config{N: n, MaxRounds: 10, NewNode: newNode})
	if err != nil {
		return err
	}
	fmt.Printf("Theorem 3 attack — split-world Q—1—Q′ without setup (n=%d per world)\n", n)
	fmt.Printf("  Q unanimous on 0:          %v\n", out.QUnanimous0)
	fmt.Printf("  Q′ unanimous on 1:         %v\n", out.QPrimeUnanimous1)
	fmt.Printf("  shared node output:        %v\n", out.SharedOutput)
	fmt.Printf("  multicast complexity C:    %d multicasts, %d bytes\n",
		out.MulticastsPerWorld, out.MulticastBytesPerWorld)
	fmt.Printf("  corruptions needed:        %d (≤ C: %v)\n",
		out.SpeakersQPrime, out.SpeakersQPrime <= out.MulticastsPerWorld)
	fmt.Printf("  CONSISTENCY VIOLATED vs:   %s\n", out.ContradictionSide)
	return nil
}

func flipAttack(n, f int, erasure bool, seed [32]byte) error {
	const epochs = 8
	cfg := ccba.Config{
		Protocol: ccba.ChenMicali, N: n, F: f, Lambda: 40, Epochs: epochs,
		Erasure: erasure, Seed: seed, InputPattern: "unanimous-1",
	}
	adv, err := ccba.NewAdversary("flip", cfg, 0)
	if err != nil {
		return err
	}
	attack := adv.(*chenmicali.FlipAttack)
	cfg.Adversary = attack
	rep, err := ccba.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("§3.3 Remark attack — quorum flip vs bit-free eligibility (n=%d, erasure=%v)\n", n, erasure)
	fmt.Printf("  forged ACKs injected:   %d\n", attack.Forged)
	fmt.Printf("  forgeries blocked:      %d (by key erasure)\n", attack.SignFailures)
	fmt.Printf("  consistency:            %v\n", errString(rep.Consistency))
	fmt.Printf("  validity:               %v\n", errString(rep.Validity))
	return nil
}

func errString(err error) string {
	if err == nil {
		return "ok"
	}
	return "VIOLATED — " + err.Error()
}
