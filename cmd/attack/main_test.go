package main

import "testing"

func TestStrongAttackCommittee(t *testing.T) {
	if err := run([]string{"-kind", "strong", "-n", "48", "-f", "16"}); err != nil {
		t.Fatal(err)
	}
}

func TestStrongAttackDolevStrong(t *testing.T) {
	if err := run([]string{"-kind", "strong", "-protocol", "dolevstrong", "-n", "16", "-f", "5"}); err != nil {
		t.Fatal(err)
	}
}

func TestNoSetupAttack(t *testing.T) {
	if err := run([]string{"-kind", "nosetup", "-n", "64"}); err != nil {
		t.Fatal(err)
	}
}

func TestFlipAttackBothModes(t *testing.T) {
	if err := run([]string{"-kind", "flip", "-n", "100", "-f", "34"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-kind", "flip", "-n", "100", "-f", "34", "-erasure"}); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsUnknown(t *testing.T) {
	if err := run([]string{"-kind", "nope"}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if err := run([]string{"-kind", "strong", "-protocol", "nope"}); err == nil {
		t.Fatal("unknown victim accepted")
	}
}
