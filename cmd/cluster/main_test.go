package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestChanRunDefaults(t *testing.T) {
	var buf bytes.Buffer
	err := run(context.Background(), []string{"-n", "32", "-f", "9", "-lambda", "10"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "consistency:       ok") {
		t.Fatalf("unexpected output:\n%s", buf.String())
	}
}

func TestChanRunJSON(t *testing.T) {
	var buf bytes.Buffer
	err := run(context.Background(), []string{"-n", "32", "-f", "9", "-lambda", "10", "-json"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("-json output unparseable: %v\n%s", err, buf.String())
	}
	for _, key := range []string{"protocol", "n", "f", "crypto", "net", "delta", "seed", "rounds", "corrupted", "metrics", "ok", "violations"} {
		if _, present := doc[key]; !present {
			t.Errorf("missing %q (must stay diffable against cmd/ba)", key)
		}
	}
	if doc["ok"] != true || doc["net"] != "delta-one" {
		t.Fatalf("unexpected document: %v", doc)
	}
}

func TestTCPInProcessMesh(t *testing.T) {
	var buf bytes.Buffer
	err := run(context.Background(), []string{"-transport", "tcp", "-n", "4", "-f", "1", "-lambda", "3", "-json"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc["ok"] != true {
		t.Fatalf("tcp mesh run not ok: %v", doc)
	}
}

// TestTCPMultiNode drives the -node form: one run() invocation per node,
// each owning a single TCP endpoint of a localhost mesh — the multi-process
// deployment, minus the processes.
func TestTCPMultiNode(t *testing.T) {
	const n = 3
	// Reserve ports by binding and releasing; DialTCP's retry loop absorbs
	// the small window before each node's listener rebinds.
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		l.Close()
	}
	peers := strings.Join(addrs, ",")

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	outs := make([]bytes.Buffer, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = run(ctx, []string{
				"-transport", "tcp", "-protocol", "quadratic",
				"-n", fmt.Sprint(n), "-f", "1",
				"-node", fmt.Sprint(i), "-peers", peers, "-json",
			}, &outs[i])
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("node %d: %v", i, errs[i])
		}
	}
	// Every node prints the identical full report.
	for i := 1; i < n; i++ {
		if outs[i].String() != outs[0].String() {
			t.Fatalf("node %d report differs from node 0:\n%s\nvs\n%s", i, outs[i].String(), outs[0].String())
		}
	}
}

func TestScenarioListing(t *testing.T) {
	var first, second bytes.Buffer
	if err := run(context.Background(), []string{"-scenarios"}, &first); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-scenarios"}, &second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatal("-scenarios listing is not deterministic")
	}
	if !strings.Contains(first.String(), "quadratic-n49") {
		t.Fatalf("missing registered scenario:\n%s", first.String())
	}
}

func TestScenarioRun(t *testing.T) {
	if err := run(context.Background(), []string{"-scenario", "quadratic-n49"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRejections(t *testing.T) {
	cases := [][]string{
		{"-scenario", "core-silent-n200"},                    // adversarial scenario
		{"-transport", "chan", "-node", "0"},                 // -node without tcp
		{"-transport", "tcp", "-node", "0"},                  // -node without -peers
		{"-transport", "carrier-pigeon"},                     // unknown transport
		{"-transport", "tcp", "-node", "0", "-peers", "a,b"}, // peer count mismatch (n=200)
	}
	for _, args := range cases {
		if err := run(context.Background(), args, io.Discard); err == nil {
			t.Errorf("%v succeeded", args)
		}
	}
}
