// Command cluster runs a protocol as a live cluster of concurrent node
// processes over a pluggable transport, instead of inside the lockstep
// simulator — same protocols, same scenario registry, same report JSON as
// cmd/ba, so the two can be diffed for the same seed and configuration.
//
// Transports:
//
//	-transport chan    n nodes in this process, one goroutine each, over
//	                   in-process channels (the default)
//	-transport tcp     a localhost (or cross-host) TCP mesh with
//	                   length-prefixed framing; all n nodes in this process
//	                   by default, or a single node joining a mesh with
//	                   -node and -peers
//
// Examples:
//
//	cluster -n 200 -f 60 -lambda 40
//	cluster -transport chan -n 32 -f 9 -json
//	cluster -transport tcp -n 4 -f 1
//	cluster -transport tcp -crypto real -node 0 -peers 127.0.0.1:7701,127.0.0.1:7702,127.0.0.1:7703,127.0.0.1:7704
//	cluster -scenario quadratic-n49
//	cluster -scenario core-chaos-n32 -json
//	cluster -scenarios
//	cluster -n 24 -f 7 -lambda 8 -chaos-drop 0.25 -json
//	cluster -n 16 -f 4 -delta 2 -round-interval 2ms -chaos-drop 0.2 -chaos-reorder 0.3
//
// The -chaos-* flags (and the Chaos field of a registered scenario) inject a
// deterministic fault schedule below the protocol surface: drops and crash
// windows on seed-chosen faulty senders, reorder/partition holds within the
// Δ bound (DESIGN.md §7). The same declaration lowers to a lockstep network
// model too — the E14 experiment cross-validates the two runtimes.
//
// The multi-process form (-node) runs the Appendix D compiler's real
// crypto for the committee-sampled protocols: the hybrid world's F_mine
// trusted party cannot be split across processes.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"ccba"
	"ccba/internal/cluster"
	"ccba/internal/obs"
	"ccba/internal/transport"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cluster:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cluster", flag.ContinueOnError)
	var (
		protocol      = fs.String("protocol", "core", "protocol: core, core-broadcast, quadratic, phaseking, phaseking-sampled, chenmicali, dolevstrong, committee")
		n             = fs.Int("n", 200, "number of nodes")
		f             = fs.Int("f", 60, "corruption budget (validation only: live runs are adversary-free)")
		lambda        = fs.Int("lambda", 40, "expected committee size")
		epochs        = fs.Int("epochs", 20, "epochs (phase-king protocols)")
		crypto        = fs.String("crypto", "ideal", "crypto mode: ideal (F_mine hybrid) or real (Ed25519 VRF)")
		seed          = fs.Int64("seed", 1, "execution seed")
		erasure       = fs.Bool("erasure", false, "memory-erasure model (chenmicali)")
		senderInput   = fs.Int("sender-input", 0, "sender input bit (broadcast protocols)")
		unanimous     = fs.Int("unanimous", -1, "if 0 or 1, give every node that input bit (agreement protocols)")
		scenarioName  = fs.String("scenario", "", "run a registered scenario by name (its adversary must be none)")
		listScenarios = fs.Bool("scenarios", false, "list the registered scenarios and exit")
		transportName = fs.String("transport", "chan", "transport: chan (in-process channels) or tcp (length-prefixed framing)")
		node          = fs.Int("node", -1, "run only this node index over TCP, joining the -peers mesh (-1 = all nodes in this process)")
		peers         = fs.String("peers", "", "comma-separated list of all node addresses in node order (tcp)")
		roundTimeout  = fs.Duration("round-timeout", 30*time.Second, "per-round barrier timeout for tcp (chan runs never need one)")
		asJSON        = fs.Bool("json", false, "emit the outcome as JSON (same document as cmd/ba)")
		traceFile     = fs.String("trace", "", "write the canonical round-event trace (JSONL, DESIGN.md §10) to this file; at Δ=1 without -round-interval it is byte-identical to cmd/ba -trace of the same config")
		obsAddr       = fs.String("obs-addr", "", "serve live telemetry on this host:port — /debug/vars (expvar, the \"ccba\" var) and /debug/pprof; port 0 picks a free one")
		obsLinger     = fs.Duration("obs-linger", 0, "keep the -obs-addr endpoint alive this long after the run, so scrapers (CI smoke jobs) can read final counters")

		delta         = fs.Int("delta", 0, "synchronizer delivery bound Δ (0 = the chaos spec's Δ, else 1)")
		roundInterval = fs.Duration("round-interval", 0, "soft per-round deadline; required when the chaos schedule delays traffic (Δ ≥ 2 reorder/jitter/partition holds)")
		chaosDrop     = fs.Float64("chaos-drop", 0, "chaos: per-frame drop rate on the seed-chosen faulty senders' links")
		chaosFaulty   = fs.Int("chaos-faulty", 0, "chaos: number of faulty senders to draw (0 = the config's f when dropping)")
		chaosReorder  = fs.Float64("chaos-reorder", 0, "chaos: probability a data frame is held back about one round (needs Δ ≥ 2)")
		chaosPart     = fs.Int("chaos-partition", 0, "chaos: hold cross-cut traffic to the Δ bound for this many initial rounds (needs Δ ≥ 2)")
		chaosCrashAt  = fs.Int("chaos-crash-from", 0, "chaos: first round of the crash window (with -chaos-crash-rounds)")
		chaosCrashLen = fs.Int("chaos-crash-rounds", 0, "chaos: crash one faulty node for this many rounds, then let it restart")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *listScenarios {
		for _, name := range ccba.ScenarioNames() {
			sc, _ := ccba.LookupScenario(name)
			fmt.Fprintf(out, "%-24s %s\n", name, sc.Description)
		}
		return nil
	}

	set := map[string]bool{}
	fs.Visit(func(fl *flag.Flag) { set[fl.Name] = true })

	cfg := ccba.Config{
		Protocol: ccba.Protocol(*protocol),
		N:        *n, F: *f, Lambda: *lambda, Epochs: *epochs,
		Crypto:  ccba.CryptoMode(*crypto),
		Erasure: *erasure,
	}
	var chaos *ccba.ChaosConfig
	if *scenarioName != "" {
		sc, ok := ccba.LookupScenario(*scenarioName)
		if !ok {
			return fmt.Errorf("unknown scenario %q (registered: %v)", *scenarioName, ccba.ScenarioNames())
		}
		if sc.Adversary != "" && sc.Adversary != "none" {
			return fmt.Errorf("scenario %q runs adversary %q; live clusters execute honest protocols only (use cmd/ba)", *scenarioName, sc.Adversary)
		}
		cfg = sc.Config
		if sc.Chaos != nil {
			cc := *sc.Chaos
			chaos = &cc
		}
		override := map[string]func(){
			"protocol": func() { cfg.Protocol = ccba.Protocol(*protocol) },
			"n":        func() { cfg.N = *n },
			"f":        func() { cfg.F = *f },
			"lambda":   func() { cfg.Lambda = *lambda },
			"epochs":   func() { cfg.Epochs = *epochs },
			"crypto":   func() { cfg.Crypto = ccba.CryptoMode(*crypto) },
			"erasure":  func() { cfg.Erasure = *erasure },
		}
		for name, apply := range override {
			if set[name] {
				apply()
			}
		}
	}
	cfg.Seed = [32]byte{}
	cfg.Seed[0] = byte(*seed)
	cfg.Seed[1] = byte(*seed >> 8)
	cfg.Seed[2] = byte(*seed >> 16)
	if set["sender-input"] || *scenarioName == "" {
		cfg.SenderInput = ccba.Zero
		if *senderInput == 1 {
			cfg.SenderInput = ccba.One
		}
	}
	switch *unanimous {
	case 0:
		cfg.Inputs, cfg.InputPattern = nil, "unanimous-0"
	case 1:
		cfg.Inputs, cfg.InputPattern = nil, "unanimous-1"
	}

	if chaos == nil && (set["chaos-drop"] || set["chaos-faulty"] || set["chaos-reorder"] ||
		set["chaos-partition"] || set["chaos-crash-from"] || set["chaos-crash-rounds"]) {
		chaos = &ccba.ChaosConfig{}
	}
	if chaos != nil {
		for name, apply := range map[string]func(){
			"delta":              func() { chaos.Delta = *delta },
			"chaos-drop":         func() { chaos.DropRate = *chaosDrop },
			"chaos-faulty":       func() { chaos.Faulty = *chaosFaulty },
			"chaos-reorder":      func() { chaos.Reorder = *chaosReorder },
			"chaos-partition":    func() { chaos.PartitionRounds = *chaosPart },
			"chaos-crash-from":   func() { chaos.CrashFrom = *chaosCrashAt },
			"chaos-crash-rounds": func() { chaos.CrashRounds = *chaosCrashLen },
		} {
			if set[name] {
				apply()
			}
		}
	}

	opts := cluster.Options{Delta: *delta, RoundInterval: *roundInterval}
	if *transportName == "tcp" {
		opts.RoundTimeout = *roundTimeout
	}
	var rec *ccba.TraceRecorder
	if *traceFile != "" {
		rec = ccba.NewTraceRecorder(0)
		opts.Tracer = rec
	}
	if *obsAddr != "" {
		tel := obs.NewTelemetry(cfg.N)
		srv, err := obs.Serve(*obsAddr, tel)
		if err != nil {
			return fmt.Errorf("obs endpoint: %w", err)
		}
		defer srv.Close()
		opts.Telemetry = tel
		fmt.Fprintf(os.Stderr, "obs: serving /debug/vars and /debug/pprof/ on %s\n", srv.Addr())
	}
	// The JSON document's net/delta fields: a chaos run reports its injected
	// schedule, a plain run the lockstep-equivalent ∆ = 1 delivery.
	netName, deltaOut := string(ccba.NetDeltaOne), 1
	if chaos != nil {
		netName, deltaOut = "chaos", chaos.EffectiveDelta()
	} else if *delta > 1 {
		deltaOut = *delta
	}

	runLive := func(netw transport.Network) (*cluster.Report, error) {
		if chaos != nil {
			return cluster.RunChaos(ctx, cfg, netw, *chaos, opts)
		}
		return cluster.Run(ctx, cfg, netw, opts)
	}

	var rep *cluster.Report
	var err error
	switch {
	case *transportName == "chan":
		if *node >= 0 {
			return fmt.Errorf("-node needs -transport tcp; the chan transport always hosts the whole cluster")
		}
		var netw *transport.ChanNetwork
		netw, err = transport.NewChanNetwork(cfg.N)
		if err != nil {
			return err
		}
		defer netw.Close()
		rep, err = runLive(netw)

	case *transportName == "tcp" && *node < 0:
		addrs := transport.LoopbackAddrs(cfg.N)
		if *peers != "" {
			if addrs, err = splitPeers(*peers, cfg.N); err != nil {
				return err
			}
		}
		var netw *transport.TCPNetwork
		netw, err = transport.NewTCPNetwork(ctx, addrs, transport.TCPOptions{})
		if err != nil {
			return err
		}
		defer netw.Close()
		rep, err = runLive(netw)

	case *transportName == "tcp":
		if *peers == "" {
			return fmt.Errorf("-node %d needs -peers with all %d node addresses in node order", *node, cfg.N)
		}
		var addrs []string
		if addrs, err = splitPeers(*peers, cfg.N); err != nil {
			return err
		}
		var ep *transport.TCPEndpoint
		ep, err = transport.DialTCP(ctx, ccba.NodeID(*node), addrs, transport.TCPOptions{})
		if err != nil {
			return err
		}
		defer ep.Close()
		if chaos != nil {
			rep, err = cluster.RunNodeChaos(ctx, cfg, ep, *chaos, opts)
		} else {
			rep, err = cluster.RunNode(ctx, cfg, ep, opts)
		}

	default:
		return fmt.Errorf("unknown transport %q (want chan or tcp)", *transportName)
	}
	if err != nil {
		return err
	}
	if rec != nil {
		if err := writeTrace(*traceFile, rec); err != nil {
			return err
		}
	}
	if *obsLinger > 0 {
		// Hold the telemetry endpoint open so an external scraper can read
		// the run's final counters and take a pprof profile.
		time.Sleep(*obsLinger)
	}
	return report(out, cfg, rep, *seed, *transportName, netName, deltaOut, *asJSON)
}

// writeTrace exports a recorder's canonical JSONL to path.
func writeTrace(path string, rec *ccba.TraceRecorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// splitPeers parses the -peers list and checks it covers the cluster.
func splitPeers(peers string, n int) ([]string, error) {
	addrs := strings.Split(peers, ",")
	if len(addrs) != n {
		return nil, fmt.Errorf("-peers lists %d addresses for a cluster of %d", len(addrs), n)
	}
	return addrs, nil
}

// singleRunJSON mirrors cmd/ba's document field for field, so the two
// binaries' outputs diff clean for the same seed and configuration. A plain
// live run executes the lockstep-equivalent ∆ = 1 schedule and reports the
// delta-one model; a chaos run reports net "chaos" with its Δ instead.
type singleRunJSON struct {
	Protocol   string            `json:"protocol"`
	N          int               `json:"n"`
	F          int               `json:"f"`
	Crypto     string            `json:"crypto"`
	Net        string            `json:"net"`
	Delta      int               `json:"delta"`
	Seed       int64             `json:"seed"`
	Rounds     int               `json:"rounds"`
	Corrupted  int               `json:"corrupted"`
	Metrics    ccba.Metrics      `json:"metrics"`
	Intern     *ccba.InternStats `json:"intern,omitempty"`
	Ok         bool              `json:"ok"`
	Violations map[string]string `json:"violations"`
}

func report(out io.Writer, cfg ccba.Config, rep *cluster.Report, seed int64, transportName, netName string, delta int, asJSON bool) error {
	if asJSON {
		// Field for field and value for value what cmd/ba emits — including
		// an empty crypto for scenarios that leave it unset — so the two
		// documents always diff clean.
		doc := singleRunJSON{
			Protocol:   string(cfg.Protocol),
			N:          cfg.N,
			F:          cfg.F,
			Crypto:     string(cfg.Crypto),
			Net:        netName,
			Delta:      delta,
			Seed:       seed,
			Rounds:     rep.Rounds,
			Corrupted:  rep.NumCorrupt(),
			Metrics:    rep.Result.Metrics,
			Ok:         rep.Ok(),
			Violations: map[string]string{},
		}
		for name, err := range map[string]error{
			"consistency": rep.Consistency, "validity": rep.Validity, "termination": rep.Termination,
		} {
			if err != nil {
				doc.Violations[name] = err.Error()
			}
		}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if _, err := out.Write(buf); err != nil {
			return err
		}
		if !rep.Ok() {
			return fmt.Errorf("security properties violated")
		}
		return nil
	}

	outputs := map[ccba.Bit]int{}
	for i := range rep.Outputs {
		if rep.Decided[i] {
			outputs[rep.Outputs[i]]++
		}
	}
	fmt.Fprintf(out, "protocol=%s n=%d f=%d crypto=%s transport=%s seed=%d\n",
		cfg.Protocol, cfg.N, cfg.F, cfg.Crypto, transportName, seed)
	fmt.Fprintf(out, "  rounds:            %d\n", rep.Rounds)
	fmt.Fprintf(out, "  multicasts:        %d (%d bytes)\n",
		rep.Result.Metrics.HonestMulticasts, rep.Result.Metrics.HonestMulticastBytes)
	fmt.Fprintf(out, "  classical msgs:    %d (%d bytes)\n",
		rep.Result.Metrics.HonestMessages, rep.Result.Metrics.HonestMessageBytes)
	fmt.Fprintf(out, "  honest outputs:    %v\n", outputs)
	fmt.Fprintf(out, "  consistency:       %v\n", errString(rep.Consistency))
	fmt.Fprintf(out, "  validity:          %v\n", errString(rep.Validity))
	fmt.Fprintf(out, "  termination:       %v\n", errString(rep.Termination))
	if !rep.Ok() {
		return fmt.Errorf("security properties violated")
	}
	return nil
}

func errString(err error) string {
	if err == nil {
		return "ok"
	}
	return "VIOLATED: " + err.Error()
}
