package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const traceA = `{"round":0,"node":0,"seq":0,"ev":"round_start"}
{"round":0,"node":0,"seq":0,"ev":"mark","acked":1}
{"round":0,"node":1,"seq":0,"ev":"round_start"}
{"round":1,"node":0,"seq":0,"ev":"round_start"}
{"round":1,"node":0,"seq":0,"ev":"decide","bit":1}
`

// traceB shares a three-event prefix with traceA, then decides a round early.
const traceB = `{"round":0,"node":0,"seq":0,"ev":"round_start"}
{"round":0,"node":0,"seq":0,"ev":"mark","acked":1}
{"round":0,"node":1,"seq":0,"ev":"round_start"}
{"round":0,"node":1,"seq":0,"ev":"decide","bit":1}
{"round":1,"node":0,"seq":0,"ev":"round_start"}
`

func write(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestIdenticalTraces(t *testing.T) {
	a := write(t, "a.jsonl", traceA)
	b := write(t, "b.jsonl", traceA)
	var out, errOut strings.Builder
	if code := run([]string{a, b}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, errOut.String())
	}
	if want := "traces identical (5 events)"; !strings.Contains(out.String(), want) {
		t.Errorf("output %q missing %q", out.String(), want)
	}
}

func TestDivergentTraces(t *testing.T) {
	a := write(t, "a.jsonl", traceA)
	b := write(t, "b.jsonl", traceB)
	var out, errOut strings.Builder
	if code := run([]string{a, b}, &out, &errOut); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{
		"traces diverge at event 4",
		"round 1 node 0 round_start vs round 0 node 1 decide",
		"shared prefix:",
		`{"round":0,"node":1,"seq":0,"ev":"round_start"}`,
		`> {"round":1,"node":0,"seq":0,"ev":"round_start"}`,
		`> {"round":0,"node":1,"seq":0,"ev":"decide","bit":1}`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q\n%s", want, got)
		}
	}
}

func TestTruncatedTrace(t *testing.T) {
	a := write(t, "a.jsonl", traceA)
	b := write(t, "b.jsonl", strings.Join(strings.SplitAfter(traceA, "\n")[:3], ""))
	var out, errOut strings.Builder
	if code := run([]string{a, b}, &out, &errOut); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "traces diverge at event 4") || !strings.Contains(got, "<end of trace>") {
		t.Errorf("truncation not reported:\n%s", got)
	}
}

func TestUsageAndMissingFile(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"only-one.jsonl"}, &out, &errOut); code != 2 {
		t.Errorf("one arg: exit code = %d, want 2", code)
	}
	if code := run([]string{"/nonexistent/a.jsonl", "/nonexistent/b.jsonl"}, &out, &errOut); code != 2 {
		t.Errorf("missing file: exit code = %d, want 2", code)
	}
}
