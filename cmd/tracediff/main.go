// Command tracediff compares two canonical round-event traces — the JSONL
// files written by `ba -trace` and `cluster -trace` (DESIGN.md §10) — and
// reports the first divergence. Because both writers emit events in the
// canonical (round, node, kind, seq) order, alignment is line-by-line: the
// first differing line is the first semantically divergent event, and the
// lines around it are the shared prefix and each trace's continuation.
//
//	ba -n 80 -f 24 -lambda 16 -seed 7 -trace sim.jsonl
//	cluster -n 80 -f 24 -lambda 16 -seed 7 -trace live.jsonl
//	tracediff sim.jsonl live.jsonl
//
// Exit status: 0 when the traces are identical, 1 when they diverge, 2 on
// usage or I/O errors.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("tracediff", flag.ContinueOnError)
	fs.SetOutput(errOut)
	ctx := fs.Int("context", 3, "events of shared prefix and per-trace continuation to print around the divergence")
	fs.Usage = func() {
		fmt.Fprintln(errOut, "usage: tracediff [-context n] trace-a.jsonl trace-b.jsonl")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	pathA, pathB := fs.Arg(0), fs.Arg(1)
	fa, err := os.Open(pathA)
	if err != nil {
		fmt.Fprintln(errOut, "tracediff:", err)
		return 2
	}
	defer fa.Close()
	fb, err := os.Open(pathB)
	if err != nil {
		fmt.Fprintln(errOut, "tracediff:", err)
		return 2
	}
	defer fb.Close()
	d, n, err := diff(fa, fb, pathA, pathB, *ctx)
	if err != nil {
		fmt.Fprintln(errOut, "tracediff:", err)
		return 2
	}
	if d == nil {
		fmt.Fprintf(out, "traces identical (%d events)\n", n)
		return 0
	}
	d.report(out, pathA, pathB)
	return 1
}

// divergence captures everything report needs: the 1-based event number,
// the shared prefix just before it, the two differing lines, and each
// trace's continuation after the split.
type divergence struct {
	event  int
	prefix []string
	lineA  string // empty when trace A ended first
	lineB  string
	nextA  []string
	nextB  []string
}

// diff scans both traces in lockstep. It returns (nil, count, nil) when
// they are byte-identical, else the first divergence with ctx lines of
// surrounding context from each side.
func diff(a, b io.Reader, nameA, nameB string, ctx int) (*divergence, int, error) {
	sa, sb := newScanner(a), newScanner(b)
	var prefix []string
	n := 0
	for {
		okA, okB := sa.Scan(), sb.Scan()
		if err := sa.Err(); err != nil {
			return nil, n, fmt.Errorf("%s: %w", nameA, err)
		}
		if err := sb.Err(); err != nil {
			return nil, n, fmt.Errorf("%s: %w", nameB, err)
		}
		if !okA && !okB {
			return nil, n, nil
		}
		n++
		la, lb := "", ""
		if okA {
			la = sa.Text()
		}
		if okB {
			lb = sb.Text()
		}
		if okA && okB && la == lb {
			prefix = append(prefix, la)
			if len(prefix) > ctx {
				prefix = prefix[1:]
			}
			continue
		}
		d := &divergence{event: n, prefix: prefix, lineA: la, lineB: lb}
		d.nextA = following(sa, ctx)
		d.nextB = following(sb, ctx)
		return d, n, nil
	}
}

// newScanner wraps a trace reader with a line budget generous enough for
// any single event line.
func newScanner(r io.Reader) *bufio.Scanner {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return s
}

// following drains up to n more lines from a scanner mid-divergence.
func following(s *bufio.Scanner, n int) []string {
	var lines []string
	for len(lines) < n && s.Scan() {
		lines = append(lines, s.Text())
	}
	return lines
}

// describe renders an event line's identifying fields for the headline;
// the raw JSON is printed alongside, so best-effort parsing is fine.
func describe(line string) string {
	if line == "" {
		return "end of trace"
	}
	var e struct {
		Round int    `json:"round"`
		Node  int    `json:"node"`
		Ev    string `json:"ev"`
	}
	if json.Unmarshal([]byte(line), &e) != nil {
		return "unparseable event"
	}
	return fmt.Sprintf("round %d node %d %s", e.Round, e.Node, e.Ev)
}

func (d *divergence) report(out io.Writer, nameA, nameB string) {
	fmt.Fprintf(out, "traces diverge at event %d: %s vs %s\n", d.event, describe(d.lineA), describe(d.lineB))
	if len(d.prefix) > 0 {
		fmt.Fprintln(out, "shared prefix:")
		for _, l := range d.prefix {
			fmt.Fprintf(out, "    %s\n", l)
		}
	}
	side := func(name, line string, next []string) {
		if line == "" {
			fmt.Fprintf(out, "%s: <end of trace>\n", name)
			return
		}
		fmt.Fprintf(out, "%s:\n", name)
		fmt.Fprintf(out, "  > %s\n", line)
		for _, l := range next {
			fmt.Fprintf(out, "    %s\n", l)
		}
	}
	side(nameA, d.lineA, d.nextA)
	side(nameB, d.lineB, d.nextB)
}
