package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles ccbavet into a temp dir and returns the binary path.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "ccbavet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building ccbavet: %v\n%s", err, out)
	}
	return bin
}

// TestHandshake checks the -V=full protocol: go vet requires
// "<name> version <ver>" with a non-"devel" version, and uses the line as
// the tool's cache key.
func TestHandshake(t *testing.T) {
	bin := buildTool(t)
	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("ccbavet -V=full: %v", err)
	}
	f := strings.Fields(strings.TrimSpace(string(out)))
	if len(f) < 3 || f[0] != "ccbavet" || f[1] != "version" {
		t.Fatalf("handshake output %q, want %q", string(out), "ccbavet version <ver>")
	}
	if f[2] == "devel" {
		t.Fatalf("handshake version is %q: go vet rejects devel tools", f[2])
	}
}

// TestFlagsQuery checks the -flags protocol go vet uses to route tool
// flags like -github through to us.
func TestFlagsQuery(t *testing.T) {
	bin := buildTool(t)
	out, err := exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("ccbavet -flags: %v", err)
	}
	if !strings.Contains(string(out), `"github"`) {
		t.Fatalf("-flags output does not describe the github flag:\n%s", out)
	}
}

// TestRepoClean is the acceptance gate: every analyzer, over every
// package in the module, through the real `go vet -vettool` protocol,
// with zero findings. A finding here is either a genuine invariant
// violation (fix it) or an audited exception missing its
// //ccba:<waiver> reason (annotate it).
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("re-vets the whole module; skipped in -short")
	}
	bin := buildTool(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("ccbavet found violations:\n%s", out)
	}
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Dir(filepath.Dir(wd)) // cmd/ccbavet -> repo root
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not at %s: %v", root, err)
	}
	return root
}
