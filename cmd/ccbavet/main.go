// Command ccbavet is the repo's custom vet multichecker. It speaks the
// `go vet -vettool` protocol (the -V=full handshake, the -flags query,
// and the per-package vet.cfg files the go command hands it), so the
// canonical invocation is
//
//	go vet -vettool=$(which ccbavet) ./...
//
// Run with package patterns (or no arguments) it re-execs that command
// itself, so a bare `ccbavet ./...` works too.
//
// The analyzers it runs are the ones in ccba/internal/analysis; see
// DESIGN.md §8 for what each enforces and why.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"os/exec"
	"strings"

	"ccba/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	var (
		github  bool
		cfgFile string
		targets []string
	)
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			fmt.Printf("ccbavet version %s\n", toolVersion())
			return 0
		case arg == "-flags" || arg == "--flags":
			printFlags()
			return 0
		case arg == "-github" || arg == "--github" || arg == "-github=true" || arg == "--github=true":
			github = true
		case arg == "-github=false" || arg == "--github=false":
			github = false
		case strings.HasSuffix(arg, ".cfg"):
			cfgFile = arg
		case strings.HasPrefix(arg, "-"):
			// Unknown vet passthrough flag: tolerate it so a future go
			// release adding driver flags does not break the handshake.
		default:
			targets = append(targets, arg)
		}
	}
	if cfgFile != "" {
		return vetUnit(cfgFile, github)
	}
	return standalone(targets, github)
}

// toolVersion is the cache key go vet mixes into each package's vet
// action: hashing our own binary means editing an analyzer invalidates
// exactly the cached results it could change. The string must not be
// "devel", which go vet rejects.
func toolVersion() string {
	exe, err := os.Executable()
	if err == nil {
		if f, err := os.Open(exe); err == nil {
			defer f.Close()
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				return fmt.Sprintf("%x", h.Sum(nil))[:16]
			}
		}
	}
	return "unknown"
}

// printFlags answers the go command's -flags query: a JSON description
// of the tool's flags, used to route `go vet -github ./...` through to
// us instead of rejecting it as an unknown build flag.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := []jsonFlag{
		{Name: "github", Bool: true, Usage: "emit GitHub Actions ::error annotations for findings"},
	}
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Stdout.Write(data)
}

// vetUnit analyzes the single package described by a vet.cfg file.
func vetUnit(cfgFile string, github bool) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccbavet: %v\n", err)
		return 1
	}
	var cfg analysis.VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ccbavet: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// ccbavet exports no facts, so the vetx output is always empty — but
	// the go command caches the file, so it must exist.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "ccbavet: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	fset := token.NewFileSet()
	pkg, err := analysis.CheckVet(fset, &cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "ccbavet: %v\n", err)
		return 1
	}
	diags := analysis.Analyze(pkg, analysis.All())
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d.String())
		if github {
			fmt.Printf("::error file=%s,line=%d,col=%d::[%s] %s\n",
				d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// standalone re-execs the canonical go vet invocation with this binary
// as the vettool, so `ccbavet ./...` needs no wrapper script.
func standalone(targets []string, github bool) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccbavet: %v\n", err)
		return 1
	}
	if len(targets) == 0 {
		targets = []string{"./..."}
	}
	args := []string{"vet", "-vettool=" + exe}
	if github {
		args = append(args, "-github")
	}
	args = append(args, targets...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if exit, ok := err.(*exec.ExitError); ok {
			return exit.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "ccbavet: %v\n", err)
		return 1
	}
	return 0
}
