package main

import "testing"

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-only", "e6", "-trials", "100"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSeveral(t *testing.T) {
	if err := run([]string{"-only", "e3,e10", "-trials", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownID(t *testing.T) {
	if err := run([]string{"-only", "e99"}); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}
