package main

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-only", "e6", "-trials", "100"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunSeveral(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-only", "e3,e10", "-trials", "1"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"E3", "E10"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("output missing %s table:\n%s", want, buf.String())
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if err := run([]string{"-only", "e99"}, io.Discard); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}

func TestRunRejectsJSONPlusCSV(t *testing.T) {
	if err := run([]string{"-only", "e10", "-json", "-csv"}, io.Discard); err == nil {
		t.Fatal("-json -csv accepted together")
	}
}

// TestJSONDeterministicAcrossWorkers is the end-to-end satellite check: the
// same sweep at -workers=1 and -workers=8 must emit byte-identical JSON.
func TestJSONDeterministicAcrossWorkers(t *testing.T) {
	var serial, parallel bytes.Buffer
	if err := run([]string{"-only", "e10,e7", "-trials", "2", "-workers", "1", "-json"}, &serial); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-only", "e10,e7", "-trials", "2", "-workers", "8", "-json"}, &parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Fatalf("-workers=1 and -workers=8 JSON differ:\n%s\n---\n%s", serial.String(), parallel.String())
	}
	var doc []map[string]any
	if err := json.Unmarshal(serial.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(doc) != 2 {
		t.Fatalf("expected 2 sweeps, got %d", len(doc))
	}
}

func TestCSVOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-only", "e10", "-trials", "1", "-workers", "4", "-csv"}, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 5 {
		t.Fatalf("csv too short:\n%s", buf.String())
	}
	if !strings.HasPrefix(lines[0], "experiment,scenario,kind,name") {
		t.Fatalf("bad header: %s", lines[0])
	}
}
