// Command experiments regenerates the paper's evaluation: one measured
// table per theorem/lemma-level claim (E1–E13 in DESIGN.md §3), with trials
// fanned out across harness workers.
//
// Examples:
//
//	experiments                           # run everything at default trial counts
//	experiments -only e2 -max-n 2048 -trials 3
//	experiments -only e8 -trials 10 -workers 8
//	experiments -only e7,e11 -json        # machine-readable sweep aggregates
//	experiments -only e12 -trials 20      # agreement vs Δ and omission rate
//	experiments -only e13                 # scaling law: core vs quadratic, n up to 10⁵
//	experiments -only e13 -e13-max-n 1000000 -trials 1   # the 10⁶ stretch point
//	experiments -only e13 -e13-crypto real -trials 1     # real-crypto (Ed25519 VRF) core sweep
//	experiments -only e7 -net delta -delta 2   # rerun E7 under worst-case Δ=2
//	experiments -only e15 -trials 50      # async track: ABA rounds vs scheduler, ACS set size vs crashes
//	experiments -csv > sweeps.csv
//
// Output is identical for every -workers value: trials are reassembled in
// trial order before aggregation, so parallel sweeps are bit-identical to
// the serial schedule.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"ccba/internal/experiments"
	"ccba/internal/harness"
	"ccba/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		only      = fs.String("only", "", "comma-separated experiment ids (e1..e15); empty = all")
		trials    = fs.Int("trials", 0, "override trial count (0 = per-experiment default)")
		workers   = fs.Int("workers", 0, "trial worker-pool size (0 = GOMAXPROCS)")
		maxN      = fs.Int("max-n", 1024, "largest n for the E2 sweep")
		e13MaxN   = fs.Int("e13-max-n", 100_000, "largest n for the E13 scaling sweep (core points 1k/10k/100k/1M; 1000000 is the stretch setting; points ≥ 50k run their trials serially so peak heap stays one trial's)")
		e13Crypto = fs.String("e13-crypto", "ideal", "crypto mode for the E13 core sweep: ideal (F_mine hybrid) or real (Ed25519 VRF mining, Appendix D compiler)")
		net       = fs.String("net", "", "network-model override for the scenario-run experiments E2, E7-E11: delta, jitter, omission, partition (E1/E3-E6 drive custom engines; E12 sweeps its own models)")
		delta     = fs.Int("delta", 0, "delivery bound Δ for the -net override")
		asJSON    = fs.Bool("json", false, "emit machine-readable sweep aggregates as JSON instead of tables")
		asCSV     = fs.Bool("csv", false, "emit sweep aggregates as CSV instead of tables")
		progress  = fs.Bool("progress", false, "print periodic per-batch progress lines (trial i/N, ETA) to stderr; stdout artifacts are unaffected")
		plotDir   = fs.String("plot-dir", "", "write gnuplot figure bundles (.gp scripts + .dat data) for the plotting experiments (e13, e14) into this directory; render with `gnuplot *.gp`")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *asJSON && *asCSV {
		return fmt.Errorf("-json and -csv are mutually exclusive")
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToLower(strings.TrimSpace(id))] = true
		}
	}
	selected := func(id string) bool { return len(want) == 0 || want[id] }
	var report func(done, total int)
	if *progress {
		report = newProgressReporter(os.Stderr)
	}
	opts := func(def int) experiments.Opts {
		t := def
		if *trials > 0 {
			t = *trials
		}
		return experiments.Opts{Trials: t, Workers: *workers, Net: scenario.NetName(*net), Delta: *delta, Progress: report}
	}

	type gen struct {
		id  string
		run func() (*experiments.Artifacts, error)
	}
	art := func(r interface{ Out() *experiments.Artifacts }, err error) (*experiments.Artifacts, error) {
		if err != nil {
			return nil, err
		}
		return r.Out(), nil
	}
	gens := []gen{
		{"e1", func() (*experiments.Artifacts, error) { return art(experiments.E1StrongAdaptive(opts(10))) }},
		{"e2", func() (*experiments.Artifacts, error) { return art(experiments.E2MulticastComplexity(opts(3), *maxN)) }},
		{"e3", func() (*experiments.Artifacts, error) { return art(experiments.E3NoSetup(opts(5))) }},
		{"e4", func() (*experiments.Artifacts, error) { return art(experiments.E4TerminatePropagation(opts(30))) }},
		{"e5", func() (*experiments.Artifacts, error) { return art(experiments.E5CommitteeConcentration(opts(1000))) }},
		{"e6", func() (*experiments.Artifacts, error) { return art(experiments.E6GoodIteration(opts(3000))) }},
		{"e7", func() (*experiments.Artifacts, error) { return art(experiments.E7SafetyTrials(opts(20))) }},
		{"e8", func() (*experiments.Artifacts, error) { return art(experiments.E8BitSpecificAblation(opts(8))) }},
		{"e9", func() (*experiments.Artifacts, error) { return art(experiments.E9ProtocolComparison(opts(5))) }},
		{"e10", func() (*experiments.Artifacts, error) { return art(experiments.E10PhaseKing(opts(3))) }},
		{"e11", func() (*experiments.Artifacts, error) { return art(experiments.E11ResilienceFrontier(opts(10))) }},
		{"e12", func() (*experiments.Artifacts, error) { return art(experiments.E12NetworkModels(opts(10))) }},
		{"e13", func() (*experiments.Artifacts, error) {
			mode := scenario.CryptoMode(*e13Crypto)
			if mode != scenario.Ideal && mode != scenario.Real {
				return nil, fmt.Errorf("unknown -e13-crypto mode %q (ideal or real)", *e13Crypto)
			}
			return art(experiments.E13ScalingLaw(opts(3), *e13MaxN, mode))
		}},
		{"e14", func() (*experiments.Artifacts, error) { return art(experiments.E14CrossValidation(opts(5))) }},
		{"e15", func() (*experiments.Artifacts, error) { return art(experiments.E15AsyncTrack(opts(20))) }},
	}

	var sweeps []*harness.Sweep
	ran := 0
	for _, g := range gens {
		if !selected(g.id) {
			continue
		}
		a, err := g.run()
		if err != nil {
			return fmt.Errorf("%s: %w", g.id, err)
		}
		ran++
		if *plotDir != "" {
			if err := writePlots(*plotDir, a.Plots); err != nil {
				return fmt.Errorf("%s: %w", g.id, err)
			}
		}
		if *asJSON || *asCSV {
			sweeps = append(sweeps, a.Sweep)
			continue
		}
		a.Table.Render(out)
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matched %q", *only)
	}
	if *asJSON {
		return harness.WriteJSON(out, sweeps)
	}
	if *asCSV {
		return harness.WriteCSV(out, sweeps)
	}
	return nil
}

// newProgressReporter returns a harness progress callback that prints
// rate-limited "trial i/N" lines with an ETA extrapolated from the batch's
// elapsed time. Generators run many scenario batches back to back through
// the one callback; a completed-count that did not grow means a new batch
// started, which resets the clock. Safe for the concurrent calls the
// harness pool makes.
func newProgressReporter(w io.Writer) func(done, total int) {
	var (
		mu       sync.Mutex
		start    time.Time
		lastLine time.Time
		prevDone int
	)
	return func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		now := time.Now()
		if done <= prevDone || start.IsZero() {
			start = now
			lastLine = time.Time{}
		}
		prevDone = done
		if done < total && now.Sub(lastLine) < time.Second {
			return
		}
		lastLine = now
		line := fmt.Sprintf("progress: trial %d/%d", done, total)
		if elapsed := now.Sub(start); done < total && done > 0 && elapsed > 0 {
			eta := elapsed / time.Duration(done) * time.Duration(total-done)
			line += fmt.Sprintf(" (ETA %s)", eta.Round(time.Second))
		}
		fmt.Fprintln(w, line)
	}
}

// writePlots materializes each figure bundle — the .gp script plus its data
// files — into dir, creating it if needed.
func writePlots(dir string, plots []experiments.Plot) error {
	if len(plots) == 0 {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, p := range plots {
		if err := os.WriteFile(filepath.Join(dir, p.Name+".gp"), []byte(p.Script), 0o644); err != nil {
			return err
		}
		for name, data := range p.Data {
			if err := os.WriteFile(filepath.Join(dir, name), []byte(data), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}
