// Command experiments regenerates the paper's evaluation: one measured
// table per theorem/lemma-level claim (E1–E10 in DESIGN.md §3).
//
// Examples:
//
//	experiments                 # run everything at default trial counts
//	experiments -only e2 -max-n 2048 -trials 3
//	experiments -only e8 -trials 10
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ccba/internal/experiments"
	"ccba/internal/table"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		only   = fs.String("only", "", "comma-separated experiment ids (e1..e11); empty = all")
		trials = fs.Int("trials", 0, "override trial count (0 = per-experiment default)")
		maxN   = fs.Int("max-n", 1024, "largest n for the E2 sweep")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToLower(strings.TrimSpace(id))] = true
		}
	}
	selected := func(id string) bool { return len(want) == 0 || want[id] }
	trialsOr := func(def int) int {
		if *trials > 0 {
			return *trials
		}
		return def
	}

	type gen struct {
		id  string
		run func() (*table.Table, error)
	}
	gens := []gen{
		{"e1", func() (*table.Table, error) {
			r, err := experiments.E1StrongAdaptive(trialsOr(10))
			return tbl(r, err)
		}},
		{"e2", func() (*table.Table, error) {
			r, err := experiments.E2MulticastComplexity(trialsOr(3), *maxN)
			return tbl(r, err)
		}},
		{"e3", func() (*table.Table, error) {
			r, err := experiments.E3NoSetup(trialsOr(5))
			return tbl(r, err)
		}},
		{"e4", func() (*table.Table, error) {
			r, err := experiments.E4TerminatePropagation(trialsOr(30))
			return tbl(r, err)
		}},
		{"e5", func() (*table.Table, error) {
			r, err := experiments.E5CommitteeConcentration(trialsOr(1000))
			return tbl(r, err)
		}},
		{"e6", func() (*table.Table, error) {
			r, err := experiments.E6GoodIteration(trialsOr(3000))
			return tbl(r, err)
		}},
		{"e7", func() (*table.Table, error) {
			r, err := experiments.E7SafetyTrials(trialsOr(20))
			return tbl(r, err)
		}},
		{"e8", func() (*table.Table, error) {
			r, err := experiments.E8BitSpecificAblation(trialsOr(8))
			return tbl(r, err)
		}},
		{"e9", func() (*table.Table, error) {
			r, err := experiments.E9ProtocolComparison(trialsOr(5))
			return tbl(r, err)
		}},
		{"e10", func() (*table.Table, error) {
			r, err := experiments.E10PhaseKing(trialsOr(3))
			return tbl(r, err)
		}},
		{"e11", func() (*table.Table, error) {
			r, err := experiments.E11ResilienceFrontier(trialsOr(10))
			return tbl(r, err)
		}},
	}

	ran := 0
	for _, g := range gens {
		if !selected(g.id) {
			continue
		}
		t, err := g.run()
		if err != nil {
			return fmt.Errorf("%s: %w", g.id, err)
		}
		t.Render(os.Stdout)
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matched %q", *only)
	}
	return nil
}

// tbl extracts the table from any experiment result via the exported field.
func tbl(result any, err error) (*table.Table, error) {
	if err != nil {
		return nil, err
	}
	switch r := result.(type) {
	case *experiments.E1Result:
		return r.Table, nil
	case *experiments.E2Result:
		return r.Table, nil
	case *experiments.E3Result:
		return r.Table, nil
	case *experiments.E4Result:
		return r.Table, nil
	case *experiments.E5Result:
		return r.Table, nil
	case *experiments.E6Result:
		return r.Table, nil
	case *experiments.E7Result:
		return r.Table, nil
	case *experiments.E8Result:
		return r.Table, nil
	case *experiments.E9Result:
		return r.Table, nil
	case *experiments.E10Result:
		return r.Table, nil
	case *experiments.E11Result:
		return r.Table, nil
	default:
		return nil, fmt.Errorf("unknown result type %T", result)
	}
}
