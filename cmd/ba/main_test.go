package main

import "testing"

func TestRunDefaults(t *testing.T) {
	if err := run([]string{"-n", "100", "-f", "30", "-lambda", "30"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTrialsPath(t *testing.T) {
	if err := run([]string{"-n", "80", "-f", "20", "-lambda", "24", "-trials", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSilentAdversary(t *testing.T) {
	if err := run([]string{"-n", "100", "-f", "30", "-lambda", "30", "-adversary", "silent"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFlipOnCore(t *testing.T) {
	if err := run([]string{"-n", "100", "-f", "30", "-lambda", "30", "-adversary", "flip"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBroadcastProtocol(t *testing.T) {
	if err := run([]string{"-protocol", "dolevstrong", "-n", "12", "-f", "4", "-sender-input", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnanimous(t *testing.T) {
	if err := run([]string{"-n", "80", "-f", "20", "-lambda", "24", "-unanimous", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-adversary", "nonexistent"},
		{"-protocol", "quadratic", "-adversary", "flip", "-n", "9", "-f", "4"},
		{"-protocol", "unknown-protocol", "-n", "10", "-f", "2"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
