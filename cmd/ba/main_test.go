package main

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
)

func TestRunDefaults(t *testing.T) {
	if err := run([]string{"-n", "100", "-f", "30", "-lambda", "30"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunTrialsPath(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "80", "-f", "20", "-lambda", "24", "-trials", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "violations") {
		t.Fatalf("missing aggregate output:\n%s", buf.String())
	}
}

func TestRunTrialsWithAdversaryFactory(t *testing.T) {
	// -trials with a stateful adversary exercises the per-trial factory; the
	// old code reused one instance across every trial.
	if err := run([]string{"-n", "100", "-f", "30", "-lambda", "30", "-adversary", "flip", "-trials", "3", "-workers", "2"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunTrialsJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "80", "-f", "20", "-lambda", "24", "-trials", "2", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trials -json output unparseable: %v\n%s", err, buf.String())
	}
	if _, ok := doc["violation_rate"]; !ok {
		t.Fatalf("missing violation_rate:\n%s", buf.String())
	}
}

// TestRunTrialsJSONDeterministicAcrossWorkers checks the CLI surface of the
// serial-vs-parallel contract.
func TestRunTrialsJSONDeterministicAcrossWorkers(t *testing.T) {
	var serial, parallel bytes.Buffer
	args := []string{"-n", "80", "-f", "20", "-lambda", "24", "-trials", "4", "-json"}
	if err := run(append(args, "-workers", "1"), &serial); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-workers", "8"), &parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Fatalf("-workers=1 and -workers=8 JSON differ:\n%s\n---\n%s", serial.String(), parallel.String())
	}
}

func TestRunSingleJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "80", "-f", "20", "-lambda", "24", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("single-run -json output unparseable: %v\n%s", err, buf.String())
	}
	if ok, _ := doc["ok"].(bool); !ok {
		t.Fatalf("run not ok:\n%s", buf.String())
	}
}

func TestRunSilentAdversary(t *testing.T) {
	if err := run([]string{"-n", "100", "-f", "30", "-lambda", "30", "-adversary", "silent"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunFlipOnCore(t *testing.T) {
	if err := run([]string{"-n", "100", "-f", "30", "-lambda", "30", "-adversary", "flip"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunBroadcastProtocol(t *testing.T) {
	if err := run([]string{"-protocol", "dolevstrong", "-n", "12", "-f", "4", "-sender-input", "1"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnanimous(t *testing.T) {
	if err := run([]string{"-n", "80", "-f", "20", "-lambda", "24", "-unanimous", "1"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-adversary", "nonexistent"},
		{"-protocol", "quadratic", "-adversary", "flip", "-n", "9", "-f", "4"},
		{"-protocol", "unknown-protocol", "-n", "10", "-f", "2"},
		{"-n", "10", "-f", "10"},
		{"-n", "0", "-f", "0"},
	}
	for _, args := range cases {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
