package main

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
)

func TestRunDefaults(t *testing.T) {
	if err := run([]string{"-n", "100", "-f", "30", "-lambda", "30"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunTrialsPath(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "80", "-f", "20", "-lambda", "24", "-trials", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "violations") {
		t.Fatalf("missing aggregate output:\n%s", buf.String())
	}
}

func TestRunTrialsWithAdversaryFactory(t *testing.T) {
	// -trials with a stateful adversary exercises the per-trial factory; the
	// old code reused one instance across every trial.
	if err := run([]string{"-n", "100", "-f", "30", "-lambda", "30", "-adversary", "flip", "-trials", "3", "-workers", "2"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunTrialsJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "80", "-f", "20", "-lambda", "24", "-trials", "2", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trials -json output unparseable: %v\n%s", err, buf.String())
	}
	if _, ok := doc["violation_rate"]; !ok {
		t.Fatalf("missing violation_rate:\n%s", buf.String())
	}
}

// TestRunTrialsJSONDeterministicAcrossWorkers checks the CLI surface of the
// serial-vs-parallel contract.
func TestRunTrialsJSONDeterministicAcrossWorkers(t *testing.T) {
	var serial, parallel bytes.Buffer
	args := []string{"-n", "80", "-f", "20", "-lambda", "24", "-trials", "4", "-json"}
	if err := run(append(args, "-workers", "1"), &serial); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-workers", "8"), &parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Fatalf("-workers=1 and -workers=8 JSON differ:\n%s\n---\n%s", serial.String(), parallel.String())
	}
}

func TestRunSingleJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "80", "-f", "20", "-lambda", "24", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("single-run -json output unparseable: %v\n%s", err, buf.String())
	}
	if ok, _ := doc["ok"].(bool); !ok {
		t.Fatalf("run not ok:\n%s", buf.String())
	}
}

func TestRunSilentAdversary(t *testing.T) {
	if err := run([]string{"-n", "100", "-f", "30", "-lambda", "30", "-adversary", "silent"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunFlipOnCore(t *testing.T) {
	if err := run([]string{"-n", "100", "-f", "30", "-lambda", "30", "-adversary", "flip"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunBroadcastProtocol(t *testing.T) {
	if err := run([]string{"-protocol", "dolevstrong", "-n", "12", "-f", "4", "-sender-input", "1"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnanimous(t *testing.T) {
	if err := run([]string{"-n", "80", "-f", "20", "-lambda", "24", "-unanimous", "1"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-adversary", "nonexistent"},
		{"-protocol", "quadratic", "-adversary", "flip", "-n", "9", "-f", "4"},
		{"-protocol", "unknown-protocol", "-n", "10", "-f", "2"},
		{"-n", "10", "-f", "10"},
		{"-n", "0", "-f", "0"},
		{"-net", "carrier-pigeon"},
		{"-delta", "3"}, // Δ>1 needs a delay-capable -net
		{"-net", "omission", "-omission-rate", "1.5"},
		{"-scenario", "no-such-scenario"},
	}
	for _, args := range cases {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// The omission model at a modest rate keeps the protocol live (more rounds,
// same safety), so the command exits clean.
func TestRunOmissionNet(t *testing.T) {
	if err := run([]string{"-n", "80", "-f", "20", "-lambda", "24",
		"-net", "omission", "-omission-rate", "0.2"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

// Worst-case Δ-delay stalls lockstep protocols: the run completes (exit via
// the violation path, not an error in the engine) and the JSON names the
// model and reports the termination violation.
func TestRunDeltaNetJSON(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-n", "60", "-f", "15", "-lambda", "16",
		"-net", "delta", "-delta", "3", "-json"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "violated") {
		t.Fatalf("worst-case Δ=3 err = %v, want violation exit", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("-net delta JSON unparseable: %v\n%s", err, buf.String())
	}
	if doc["net"] != "delta" || doc["delta"] != float64(3) {
		t.Fatalf("JSON net/delta = %v/%v", doc["net"], doc["delta"])
	}
}

// The trials path under a non-default net model stays worker-count
// independent — the CLI surface of the acceptance criterion.
func TestRunDeltaTrialsDeterministicAcrossWorkers(t *testing.T) {
	var serial, parallel bytes.Buffer
	args := []string{"-n", "60", "-f", "15", "-lambda", "16",
		"-net", "jitter", "-delta", "2", "-trials", "4", "-json"}
	errSerial := run(append(args, "-workers", "1"), &serial)
	errParallel := run(append(args, "-workers", "4"), &parallel)
	if (errSerial == nil) != (errParallel == nil) {
		t.Fatalf("exit mismatch: %v vs %v", errSerial, errParallel)
	}
	if serial.Len() == 0 || !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Fatalf("-workers=1 and -workers=4 JSON differ:\n%s\n---\n%s", serial.String(), parallel.String())
	}
}

func TestRunScenario(t *testing.T) {
	var buf bytes.Buffer
	// Registered scenario, shrunk by explicit flag overrides for speed.
	if err := run([]string{"-scenario", "core-silent-n200", "-n", "80", "-f", "20", "-lambda", "24", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("scenario JSON unparseable: %v\n%s", err, buf.String())
	}
	if doc["corrupted"] != float64(20) {
		t.Fatalf("scenario adversary did not corrupt f nodes: %v", doc["corrupted"])
	}
}

func TestListScenarios(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scenarios"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"core-n200", "core-delta3-n200", "core-omission-n200"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("scenario listing missing %q:\n%s", want, buf.String())
		}
	}
}
