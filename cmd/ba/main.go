// Command ba runs one Byzantine Agreement (or Broadcast) instance of any of
// the implemented protocols and prints the outcome and communication
// metrics.
//
// Examples:
//
//	ba -protocol core -n 500 -f 150 -lambda 40
//	ba -protocol core -crypto real -n 200 -f 60
//	ba -protocol dolevstrong -n 32 -f 10 -sender-input 1
//	ba -protocol chenmicali -n 150 -erasure=false -adversary flip
package main

import (
	"flag"
	"fmt"
	"os"

	"ccba"
	"ccba/internal/chenmicali"
	"ccba/internal/core"
	"ccba/internal/netsim"
	"ccba/internal/types"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ba:", err)
		os.Exit(1)
	}
}

// silencer statically corrupts the first f nodes.
type silencer struct{ netsim.Passive }

func (s *silencer) Setup(ctx *netsim.Ctx) {
	for i := 0; i < ctx.F(); i++ {
		if _, err := ctx.Corrupt(types.NodeID(i)); err != nil {
			return
		}
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ba", flag.ContinueOnError)
	var (
		protocol    = fs.String("protocol", "core", "protocol: core, core-broadcast, quadratic, phaseking, phaseking-sampled, chenmicali, dolevstrong, committee")
		n           = fs.Int("n", 200, "number of nodes")
		f           = fs.Int("f", 60, "corruption budget")
		lambda      = fs.Int("lambda", 40, "expected committee size")
		epochs      = fs.Int("epochs", 20, "epochs (phase-king protocols)")
		crypto      = fs.String("crypto", "ideal", "crypto mode: ideal (F_mine hybrid) or real (Ed25519 VRF)")
		seed        = fs.Int64("seed", 1, "execution seed")
		adversary   = fs.String("adversary", "none", "adversary: none, silent, flip (core/chenmicali vote flipper)")
		erasure     = fs.Bool("erasure", false, "memory-erasure model (chenmicali)")
		senderInput = fs.Int("sender-input", 0, "sender input bit (broadcast protocols)")
		unanimous   = fs.Int("unanimous", -1, "if 0 or 1, give every node that input bit (agreement protocols)")
		trials      = fs.Int("trials", 1, "number of runs (aggregated when > 1)")
		parallel    = fs.Bool("parallel", false, "step nodes on multiple goroutines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := ccba.Config{
		Protocol: ccba.Protocol(*protocol),
		N:        *n, F: *f, Lambda: *lambda, Epochs: *epochs,
		Crypto:   ccba.CryptoMode(*crypto),
		Erasure:  *erasure,
		Parallel: *parallel,
	}
	cfg.Seed[0] = byte(*seed)
	cfg.Seed[1] = byte(*seed >> 8)
	cfg.Seed[2] = byte(*seed >> 16)
	if *senderInput == 1 {
		cfg.SenderInput = ccba.One
	}
	if *unanimous == 0 || *unanimous == 1 {
		cfg.Inputs = make([]ccba.Bit, *n)
		for i := range cfg.Inputs {
			cfg.Inputs[i] = types.BitFromBool(*unanimous == 1)
		}
	}

	switch *adversary {
	case "none":
	case "silent":
		cfg.Adversary = &silencer{}
	case "flip":
		switch cfg.Protocol {
		case ccba.Core:
			cfg.Adversary = &core.VoteFlipAttack{}
		case ccba.ChenMicali:
			victims := make([]types.NodeID, 0, *n/2)
			for i := *n / 2; i < *n; i++ {
				victims = append(victims, types.NodeID(i))
			}
			cfg.Adversary = &chenmicali.FlipAttack{TargetEpoch: uint32(*epochs - 1), Victims: victims}
		default:
			return fmt.Errorf("adversary flip supports protocols core and chenmicali, not %q", *protocol)
		}
	default:
		return fmt.Errorf("unknown adversary %q", *adversary)
	}

	if *trials > 1 {
		st, err := ccba.RunTrials(cfg, *trials)
		if err != nil {
			return err
		}
		fmt.Printf("protocol=%s n=%d f=%d crypto=%s trials=%d\n", *protocol, *n, *f, *crypto, *trials)
		fmt.Printf("  violations:      %d\n", st.Violations)
		fmt.Printf("  mean rounds:     %.1f\n", st.MeanRounds)
		fmt.Printf("  mean multicasts: %.1f (%.1f KB)\n", st.MeanMulticasts, st.MeanMcastBytes/1024)
		fmt.Printf("  mean classical:  %.0f messages\n", st.MeanMessages)
		return nil
	}

	rep, err := ccba.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("protocol=%s n=%d f=%d crypto=%s seed=%d\n", *protocol, *n, *f, *crypto, *seed)
	fmt.Printf("  rounds:            %d\n", rep.Rounds)
	fmt.Printf("  corrupted:         %d\n", rep.NumCorrupt())
	fmt.Printf("  multicasts:        %d (%d bytes)\n",
		rep.Result.Metrics.HonestMulticasts, rep.Result.Metrics.HonestMulticastBytes)
	fmt.Printf("  classical msgs:    %d (%d bytes)\n",
		rep.Result.Metrics.HonestMessages, rep.Result.Metrics.HonestMessageBytes)
	outputs := map[ccba.Bit]int{}
	for _, id := range rep.ForeverHonest() {
		if rep.Decided[id] {
			outputs[rep.Outputs[id]]++
		}
	}
	fmt.Printf("  honest outputs:    %v\n", outputs)
	fmt.Printf("  consistency:       %v\n", errString(rep.Consistency))
	fmt.Printf("  validity:          %v\n", errString(rep.Validity))
	fmt.Printf("  termination:       %v\n", errString(rep.Termination))
	if !rep.Ok() {
		return fmt.Errorf("security properties violated")
	}
	return nil
}

func errString(err error) string {
	if err == nil {
		return "ok"
	}
	return "VIOLATED: " + err.Error()
}
