// Command ba runs one Byzantine Agreement (or Broadcast) instance of any of
// the implemented protocols and prints the outcome and communication
// metrics. With -trials it fans independent runs out across harness workers
// and prints (or emits as JSON) the aggregate.
//
// Protocols, adversaries, and network models all resolve through the ccba
// scenario registries: -adversary names a registered strategy, -net/-delta
// select the message-scheduling model, and -scenario loads a whole
// registered setting (individual flags still override its fields).
//
// Examples:
//
//	ba -protocol core -n 500 -f 150 -lambda 40
//	ba -protocol core -crypto real -n 200 -f 60
//	ba -protocol dolevstrong -n 32 -f 10 -sender-input 1
//	ba -protocol chenmicali -n 150 -erasure=false -adversary flip
//	ba -protocol core -n 200 -f 60 -trials 100 -workers 8 -json
//	ba -net delta -delta 3 -trials 8 -workers 4 -json
//	ba -net omission -omission-rate 0.25 -n 100 -f 30
//	ba -sparse -n 100000 -f 30000 -lambda 40       # large-N engine path
//	ba -scenario core-sparse-n100k
//	ba -scenario core-delta3-n200
//	ba -protocol aba -n 16 -f 5 -sched adversarial-delay   # async track
//	ba -protocol acs -n 16 -f 5 -crashes 5 -sched random
//	ba -scenario acs-n16 -trials 50 -workers 4 -json
//	ba -scenarios
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sync/atomic"

	"ccba"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ba:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ba", flag.ContinueOnError)
	var (
		protocol      = fs.String("protocol", "core", "protocol: core, core-broadcast, quadratic, phaseking, phaseking-sampled, chenmicali, dolevstrong, committee, brb, aba, acs")
		n             = fs.Int("n", 200, "number of nodes")
		f             = fs.Int("f", 60, "corruption budget")
		lambda        = fs.Int("lambda", 40, "expected committee size")
		epochs        = fs.Int("epochs", 20, "epochs (phase-king protocols)")
		crypto        = fs.String("crypto", "ideal", "crypto mode: ideal (F_mine hybrid) or real (Ed25519 VRF)")
		seed          = fs.Int64("seed", 1, "execution seed")
		adversary     = fs.String("adversary", "none", "adversary from the registry (see ccba.Adversaries): none, silent, flip, …")
		erasure       = fs.Bool("erasure", false, "memory-erasure model (chenmicali)")
		senderInput   = fs.Int("sender-input", 0, "sender input bit (broadcast protocols)")
		unanimous     = fs.Int("unanimous", -1, "if 0 or 1, give every node that input bit (agreement protocols)")
		net           = fs.String("net", "", "network model: delta-one (default), delta (worst-case Δ-delay), jitter, omission, partition")
		delta         = fs.Int("delta", 0, "delivery bound Δ for the delay-capable network models")
		sched         = fs.String("sched", "", "async scheduler for brb/aba/acs: fifo (default), random, adversarial-delay")
		advDelay      = fs.Int("adv-delay", 0, "adversarial-delay holdback penalty (0 = 4·n; adversarial-delay scheduler only)")
		crashes       = fs.Int("crashes", 0, "crash-faulty node count drawn seed-deterministically (async protocols, ≤ f)")
		omissionRate  = fs.Float64("omission-rate", 0, "per-link drop probability of the omission model")
		faulty        = fs.Int("faulty", 0, "omission-faulty sender count (0 = the corruption budget f)")
		scenarioName  = fs.String("scenario", "", "run a registered scenario by name; other flags override its fields")
		listScenarios = fs.Bool("scenarios", false, "list the registered scenarios and exit")
		trials        = fs.Int("trials", 1, "number of runs (aggregated when > 1)")
		workers       = fs.Int("workers", 0, "trial worker-pool size (0 = GOMAXPROCS); aggregates are identical for every value")
		parallel      = fs.Bool("parallel", false, "step nodes on multiple goroutines")
		sparse        = fs.Bool("sparse", false, "memory-lean large-N engine path (delta-one, passive adversary); use for n ≥ ~10⁵")
		sparseWorkers = fs.Int("sparse-workers", 0, "sparse shard-stepping worker count (0 = GOMAXPROCS, 1 = serial); results are byte-identical for every value")
		asJSON        = fs.Bool("json", false, "emit the outcome as JSON")
		traceFile     = fs.String("trace", "", "write the canonical round-event trace (JSONL, DESIGN.md §10) to this file; single runs only")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *listScenarios {
		for _, name := range ccba.ScenarioNames() {
			sc, _ := ccba.LookupScenario(name)
			fmt.Fprintf(out, "%-24s %s\n", name, sc.Description)
		}
		return nil
	}

	set := map[string]bool{}
	fs.Visit(func(fl *flag.Flag) { set[fl.Name] = true })

	cfg := ccba.Config{
		Protocol: ccba.Protocol(*protocol),
		N:        *n, F: *f, Lambda: *lambda, Epochs: *epochs,
		Crypto:        ccba.CryptoMode(*crypto),
		Erasure:       *erasure,
		Parallel:      *parallel,
		Sparse:        *sparse,
		SparseWorkers: *sparseWorkers,
		Net:           ccba.NetName(*net),
		Delta:         *delta,
		OmissionRate:  *omissionRate,
		Sched:         ccba.SchedName(*sched),
		AdvDelay:      *advDelay,
		Crashes:       *crashes,
	}
	advName := *adversary
	if *scenarioName != "" {
		sc, ok := ccba.LookupScenario(*scenarioName)
		if !ok {
			return fmt.Errorf("unknown scenario %q (registered: %v)", *scenarioName, ccba.ScenarioNames())
		}
		cfg = sc.Config
		cfg.Parallel = *parallel
		if set["sparse"] {
			cfg.Sparse = *sparse
		}
		if set["sparse-workers"] {
			cfg.SparseWorkers = *sparseWorkers
		}
		if !set["adversary"] {
			advName = sc.Adversary
			if advName == "" {
				advName = "none"
			}
		}
		// Explicitly passed flags override the scenario's fields.
		override := map[string]func(){
			"protocol":      func() { cfg.Protocol = ccba.Protocol(*protocol) },
			"n":             func() { cfg.N = *n },
			"f":             func() { cfg.F = *f },
			"lambda":        func() { cfg.Lambda = *lambda },
			"epochs":        func() { cfg.Epochs = *epochs },
			"crypto":        func() { cfg.Crypto = ccba.CryptoMode(*crypto) },
			"erasure":       func() { cfg.Erasure = *erasure },
			"net":           func() { cfg.Net = ccba.NetName(*net) },
			"delta":         func() { cfg.Delta = *delta },
			"omission-rate": func() { cfg.OmissionRate = *omissionRate },
			"sched":         func() { cfg.Sched = ccba.SchedName(*sched) },
			"adv-delay":     func() { cfg.AdvDelay = *advDelay },
			"crashes":       func() { cfg.Crashes = *crashes },
		}
		for name, apply := range override {
			if set[name] {
				apply()
			}
		}
	}
	if *faulty > 0 {
		cfg.OmissionFaulty = *faulty
	}
	cfg.Seed = [32]byte{}
	cfg.Seed[0] = byte(*seed)
	cfg.Seed[1] = byte(*seed >> 8)
	cfg.Seed[2] = byte(*seed >> 16)
	if set["sender-input"] || *scenarioName == "" {
		// An explicitly passed -sender-input overrides a scenario's value in
		// either direction, 1 or 0 (the non-scenario default is 0 anyway).
		cfg.SenderInput = ccba.Zero
		if *senderInput == 1 {
			cfg.SenderInput = ccba.One
		}
	}
	switch *unanimous {
	case 0:
		cfg.Inputs, cfg.InputPattern = nil, "unanimous-0"
	case 1:
		cfg.Inputs, cfg.InputPattern = nil, "unanimous-1"
	}

	// Adversaries are stateful, so the registry builds one fresh instance
	// per trial; resolve once up front so an unknown name or unsupported
	// protocol fails before any trial runs. Factories may still fail for a
	// later trial (the trial index is part of their contract), so the first
	// such error is captured and fails the command rather than letting
	// those trials silently run passive.
	if _, err := ccba.NewAdversary(advName, cfg, 0); err != nil {
		return err
	}
	var advErr atomic.Pointer[error]
	newAdversary := func(trial int) ccba.Adversary {
		adv, err := ccba.NewAdversary(advName, cfg, trial)
		if err != nil {
			advErr.CompareAndSwap(nil, &err)
			return nil
		}
		return adv
	}

	if *trials > 1 {
		if *traceFile != "" {
			return fmt.Errorf("-trace records one execution; drop -trials or run them one seed at a time")
		}
		st, err := ccba.RunTrialsOpts(cfg, ccba.TrialOpts{
			Trials:       *trials,
			Workers:      *workers,
			NewAdversary: newAdversary,
		})
		if e := advErr.Load(); e != nil {
			return fmt.Errorf("adversary %q: %w", advName, *e)
		}
		if err != nil {
			return err
		}
		if *asJSON {
			if err := writeJSON(out, st); err != nil {
				return err
			}
		} else {
			fmt.Fprintf(out, "protocol=%s n=%d f=%d crypto=%s net=%s delta=%d trials=%d workers=%d\n",
				cfg.Protocol, cfg.N, cfg.F, cfg.Crypto, netLabel(cfg), cfg.Delta, *trials, *workers)
			fmt.Fprintf(out, "  violations:      %d (rate %.3f, 95%% CI [%.3f, %.3f])\n",
				st.Violations, st.ViolationRate, st.ViolationLo, st.ViolationHi)
			fmt.Fprintf(out, "  rounds:          %v\n", st.Rounds)
			fmt.Fprintf(out, "  multicasts:      %v (%.1f KB mean)\n", st.Multicasts, st.MeanMcastBytes/1024)
			fmt.Fprintf(out, "  classical msgs:  %v\n", st.Messages)
		}
		// Same exit-code contract as a single run: violations fail the command.
		if st.Violations > 0 {
			return fmt.Errorf("security properties violated in %d/%d trials", st.Violations, *trials)
		}
		return nil
	}

	cfg.Adversary = newAdversary(0)
	var rec *ccba.TraceRecorder
	if *traceFile != "" {
		rec = ccba.NewTraceRecorder(0)
		cfg.Tracer = rec
	}
	rep, err := ccba.Run(cfg)
	if err != nil {
		return err
	}
	if rec != nil {
		if err := writeTrace(*traceFile, rec); err != nil {
			return err
		}
	}
	outputs := map[ccba.Bit]int{}
	for _, id := range rep.ForeverHonest() {
		if rep.Decided[id] {
			outputs[rep.Outputs[id]]++
		}
	}
	if *asJSON {
		doc := singleRunJSON{
			Protocol:   string(cfg.Protocol),
			N:          cfg.N,
			F:          cfg.F,
			Crypto:     string(cfg.Crypto),
			Net:        netLabel(cfg),
			Delta:      max(cfg.Delta, 1),
			Seed:       *seed,
			Rounds:     rep.Rounds,
			Corrupted:  rep.NumCorrupt(),
			Metrics:    rep.Result.Metrics,
			Intern:     rep.Intern,
			Async:      rep.Async,
			Ok:         rep.Ok(),
			Violations: map[string]string{},
		}
		for name, err := range map[string]error{
			"consistency": rep.Consistency, "validity": rep.Validity, "termination": rep.Termination,
		} {
			if err != nil {
				doc.Violations[name] = err.Error()
			}
		}
		if err := writeJSON(out, doc); err != nil {
			return err
		}
		if !rep.Ok() {
			return fmt.Errorf("security properties violated")
		}
		return nil
	}
	fmt.Fprintf(out, "protocol=%s n=%d f=%d crypto=%s net=%s delta=%d seed=%d\n",
		cfg.Protocol, cfg.N, cfg.F, cfg.Crypto, netLabel(cfg), max(cfg.Delta, 1), *seed)
	fmt.Fprintf(out, "  rounds:            %d\n", rep.Rounds)
	fmt.Fprintf(out, "  corrupted:         %d\n", rep.NumCorrupt())
	fmt.Fprintf(out, "  multicasts:        %d (%d bytes)\n",
		rep.Result.Metrics.HonestMulticasts, rep.Result.Metrics.HonestMulticastBytes)
	fmt.Fprintf(out, "  classical msgs:    %d (%d bytes)\n",
		rep.Result.Metrics.HonestMessages, rep.Result.Metrics.HonestMessageBytes)
	fmt.Fprintf(out, "  honest outputs:    %v\n", outputs)
	if rep.Async != nil {
		fmt.Fprintf(out, "  decide round:      %d\n", rep.Async.DecideRound)
		if rep.Async.SetSize >= 0 {
			fmt.Fprintf(out, "  acs set size:      %d\n", rep.Async.SetSize)
		}
	}
	fmt.Fprintf(out, "  consistency:       %v\n", errString(rep.Consistency))
	fmt.Fprintf(out, "  validity:          %v\n", errString(rep.Validity))
	fmt.Fprintf(out, "  termination:       %v\n", errString(rep.Termination))
	if !rep.Ok() {
		return fmt.Errorf("security properties violated")
	}
	return nil
}

// netLabel names the effective message-scheduling model of a config: the
// network model on the synchronous track, the scheduler on the async one.
func netLabel(cfg ccba.Config) string {
	if cfg.Protocol.Async() {
		if cfg.Sched == "" {
			return "sched:" + string(ccba.SchedFIFO)
		}
		return "sched:" + string(cfg.Sched)
	}
	if cfg.Net == "" {
		return string(ccba.NetDeltaOne)
	}
	return string(cfg.Net)
}

// singleRunJSON is the -json document for a single execution. The intern
// field appears only on interning runs (Sparse defaults it on); its counters
// are deterministic per (config, seed), so sparse documents stay
// byte-diffable across -sparse-workers values.
type singleRunJSON struct {
	Protocol   string            `json:"protocol"`
	N          int               `json:"n"`
	F          int               `json:"f"`
	Crypto     string            `json:"crypto"`
	Net        string            `json:"net"`
	Delta      int               `json:"delta"`
	Seed       int64             `json:"seed"`
	Rounds     int               `json:"rounds"`
	Corrupted  int               `json:"corrupted"`
	Metrics    ccba.Metrics      `json:"metrics"`
	Intern     *ccba.InternStats `json:"intern,omitempty"`
	Async      *ccba.AsyncInfo   `json:"async,omitempty"`
	Ok         bool              `json:"ok"`
	Violations map[string]string `json:"violations"`
}

// writeTrace exports a recorder's canonical JSONL to path.
func writeTrace(path string, rec *ccba.TraceRecorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeJSON(w io.Writer, v any) error {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

func errString(err error) string {
	if err == nil {
		return "ok"
	}
	return "VIOLATED: " + err.Error()
}
