// Command ba runs one Byzantine Agreement (or Broadcast) instance of any of
// the implemented protocols and prints the outcome and communication
// metrics. With -trials it fans independent runs out across harness workers
// and prints (or emits as JSON) the aggregate.
//
// Examples:
//
//	ba -protocol core -n 500 -f 150 -lambda 40
//	ba -protocol core -crypto real -n 200 -f 60
//	ba -protocol dolevstrong -n 32 -f 10 -sender-input 1
//	ba -protocol chenmicali -n 150 -erasure=false -adversary flip
//	ba -protocol core -n 200 -f 60 -trials 100 -workers 8 -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"ccba"
	"ccba/internal/chenmicali"
	"ccba/internal/core"
	"ccba/internal/netsim"
	"ccba/internal/types"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ba:", err)
		os.Exit(1)
	}
}

// silencer statically corrupts the first f nodes.
type silencer struct{ netsim.Passive }

func (s *silencer) Setup(ctx *netsim.Ctx) {
	for i := 0; i < ctx.F(); i++ {
		if _, err := ctx.Corrupt(types.NodeID(i)); err != nil {
			return
		}
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ba", flag.ContinueOnError)
	var (
		protocol    = fs.String("protocol", "core", "protocol: core, core-broadcast, quadratic, phaseking, phaseking-sampled, chenmicali, dolevstrong, committee")
		n           = fs.Int("n", 200, "number of nodes")
		f           = fs.Int("f", 60, "corruption budget")
		lambda      = fs.Int("lambda", 40, "expected committee size")
		epochs      = fs.Int("epochs", 20, "epochs (phase-king protocols)")
		crypto      = fs.String("crypto", "ideal", "crypto mode: ideal (F_mine hybrid) or real (Ed25519 VRF)")
		seed        = fs.Int64("seed", 1, "execution seed")
		adversary   = fs.String("adversary", "none", "adversary: none, silent, flip (core/chenmicali vote flipper)")
		erasure     = fs.Bool("erasure", false, "memory-erasure model (chenmicali)")
		senderInput = fs.Int("sender-input", 0, "sender input bit (broadcast protocols)")
		unanimous   = fs.Int("unanimous", -1, "if 0 or 1, give every node that input bit (agreement protocols)")
		trials      = fs.Int("trials", 1, "number of runs (aggregated when > 1)")
		workers     = fs.Int("workers", 0, "trial worker-pool size (0 = GOMAXPROCS); aggregates are identical for every value")
		parallel    = fs.Bool("parallel", false, "step nodes on multiple goroutines")
		asJSON      = fs.Bool("json", false, "emit the outcome as JSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := ccba.Config{
		Protocol: ccba.Protocol(*protocol),
		N:        *n, F: *f, Lambda: *lambda, Epochs: *epochs,
		Crypto:   ccba.CryptoMode(*crypto),
		Erasure:  *erasure,
		Parallel: *parallel,
	}
	cfg.Seed[0] = byte(*seed)
	cfg.Seed[1] = byte(*seed >> 8)
	cfg.Seed[2] = byte(*seed >> 16)
	if *senderInput == 1 {
		cfg.SenderInput = ccba.One
	}
	if *unanimous == 0 || *unanimous == 1 {
		cfg.Inputs = make([]ccba.Bit, *n)
		for i := range cfg.Inputs {
			cfg.Inputs[i] = types.BitFromBool(*unanimous == 1)
		}
	}

	// Adversaries are stateful, so the CLI builds a factory and lets the
	// trial engine construct one fresh instance per trial.
	var newAdversary func(trial int) ccba.Adversary
	switch *adversary {
	case "none":
	case "silent":
		newAdversary = func(int) ccba.Adversary { return &silencer{} }
	case "flip":
		switch cfg.Protocol {
		case ccba.Core:
			newAdversary = func(int) ccba.Adversary { return &core.VoteFlipAttack{} }
		case ccba.ChenMicali:
			newAdversary = func(int) ccba.Adversary {
				victims := make([]types.NodeID, 0, *n/2)
				for i := *n / 2; i < *n; i++ {
					victims = append(victims, types.NodeID(i))
				}
				return &chenmicali.FlipAttack{TargetEpoch: uint32(*epochs - 1), Victims: victims}
			}
		default:
			return fmt.Errorf("adversary flip supports protocols core and chenmicali, not %q", *protocol)
		}
	default:
		return fmt.Errorf("unknown adversary %q", *adversary)
	}

	if *trials > 1 {
		st, err := ccba.RunTrialsOpts(cfg, ccba.TrialOpts{
			Trials:       *trials,
			Workers:      *workers,
			NewAdversary: newAdversary,
		})
		if err != nil {
			return err
		}
		if *asJSON {
			if err := writeJSON(out, st); err != nil {
				return err
			}
		} else {
			fmt.Fprintf(out, "protocol=%s n=%d f=%d crypto=%s trials=%d workers=%d\n", *protocol, *n, *f, *crypto, *trials, *workers)
			fmt.Fprintf(out, "  violations:      %d (rate %.3f, 95%% CI [%.3f, %.3f])\n",
				st.Violations, st.ViolationRate, st.ViolationLo, st.ViolationHi)
			fmt.Fprintf(out, "  rounds:          %v\n", st.Rounds)
			fmt.Fprintf(out, "  multicasts:      %v (%.1f KB mean)\n", st.Multicasts, st.MeanMcastBytes/1024)
			fmt.Fprintf(out, "  classical msgs:  %v\n", st.Messages)
		}
		// Same exit-code contract as a single run: violations fail the command.
		if st.Violations > 0 {
			return fmt.Errorf("security properties violated in %d/%d trials", st.Violations, *trials)
		}
		return nil
	}

	if newAdversary != nil {
		cfg.Adversary = newAdversary(0)
	}
	rep, err := ccba.Run(cfg)
	if err != nil {
		return err
	}
	outputs := map[ccba.Bit]int{}
	for _, id := range rep.ForeverHonest() {
		if rep.Decided[id] {
			outputs[rep.Outputs[id]]++
		}
	}
	if *asJSON {
		doc := singleRunJSON{
			Protocol:   *protocol,
			N:          *n,
			F:          *f,
			Crypto:     *crypto,
			Seed:       *seed,
			Rounds:     rep.Rounds,
			Corrupted:  rep.NumCorrupt(),
			Metrics:    rep.Result.Metrics,
			Ok:         rep.Ok(),
			Violations: map[string]string{},
		}
		for name, err := range map[string]error{
			"consistency": rep.Consistency, "validity": rep.Validity, "termination": rep.Termination,
		} {
			if err != nil {
				doc.Violations[name] = err.Error()
			}
		}
		if err := writeJSON(out, doc); err != nil {
			return err
		}
		if !rep.Ok() {
			return fmt.Errorf("security properties violated")
		}
		return nil
	}
	fmt.Fprintf(out, "protocol=%s n=%d f=%d crypto=%s seed=%d\n", *protocol, *n, *f, *crypto, *seed)
	fmt.Fprintf(out, "  rounds:            %d\n", rep.Rounds)
	fmt.Fprintf(out, "  corrupted:         %d\n", rep.NumCorrupt())
	fmt.Fprintf(out, "  multicasts:        %d (%d bytes)\n",
		rep.Result.Metrics.HonestMulticasts, rep.Result.Metrics.HonestMulticastBytes)
	fmt.Fprintf(out, "  classical msgs:    %d (%d bytes)\n",
		rep.Result.Metrics.HonestMessages, rep.Result.Metrics.HonestMessageBytes)
	fmt.Fprintf(out, "  honest outputs:    %v\n", outputs)
	fmt.Fprintf(out, "  consistency:       %v\n", errString(rep.Consistency))
	fmt.Fprintf(out, "  validity:          %v\n", errString(rep.Validity))
	fmt.Fprintf(out, "  termination:       %v\n", errString(rep.Termination))
	if !rep.Ok() {
		return fmt.Errorf("security properties violated")
	}
	return nil
}

// singleRunJSON is the -json document for a single execution.
type singleRunJSON struct {
	Protocol   string            `json:"protocol"`
	N          int               `json:"n"`
	F          int               `json:"f"`
	Crypto     string            `json:"crypto"`
	Seed       int64             `json:"seed"`
	Rounds     int               `json:"rounds"`
	Corrupted  int               `json:"corrupted"`
	Metrics    ccba.Metrics      `json:"metrics"`
	Ok         bool              `json:"ok"`
	Violations map[string]string `json:"violations"`
}

func writeJSON(w io.Writer, v any) error {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

func errString(err error) string {
	if err == nil {
		return "ok"
	}
	return "VIOLATED: " + err.Error()
}
