// Command bench runs the end-to-end protocol benchmarks and emits a
// machine-readable JSON report (ns/op, B/op, allocs/op per benchmark), so
// the performance trajectory of the simulator can be tracked across PRs:
//
//	go run ./cmd/bench -out BENCH_PR1.json
//	go run ./cmd/bench -benchtime 5 -only CoreIdealN1000
//
// The benchmark set mirrors the protocol benchmarks in bench_test.go; each
// case runs complete executions with per-iteration seed variation, exactly
// like `go test -bench`.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"ccba"
	"ccba/internal/cluster"
	"ccba/internal/transport"
)

// benchCase is one tracked benchmark configuration. AllowViolations is for
// the adversarial network-model cases: under worst-case Δ-delay a lockstep
// protocol is expected to stall (that stall is what the case measures), so
// a termination violation is the workload, not a failure. Heavy cases (the
// million-node stretch point) are skipped unless named by -only, so the
// default run stays minutes, not hours.
type benchCase struct {
	Name            string
	Cfg             ccba.Config
	AllowViolations bool
	Heavy           bool
}

// cases mirrors the protocol benchmarks of bench_test.go. Keep the two
// lists in sync: this one feeds the tracked JSON artifacts.
//
// The two CoreIdealN1000Delta* cases bracket the scheduling layer:
// DeltaOne must keep the PR1 zero-allocation fast path (allocs/op on par
// with CoreIdealN1000), while delta=3 worst-case runs the general
// per-link scheduler at full fan-out to iteration exhaustion.
// The three CoreIdeal*Sparse cases track the large-N engine path:
// N1000Sparse sits next to CoreIdealN1000 so the sparse path's overhead at
// ordinary sizes stays visible, N10k/N100k are the scaling points the E13
// experiment sweeps — the dense engine has no tracked cases there because
// the sparse path is the supported way to run them.
var cases = []benchCase{
	{Name: "CoreIdealN200", Cfg: ccba.Config{Protocol: ccba.Core, N: 200, F: 60, Lambda: 40}},
	{Name: "CoreIdealN1000", Cfg: ccba.Config{Protocol: ccba.Core, N: 1000, F: 300, Lambda: 40}},
	{Name: "CoreIdealN1000Sparse", Cfg: ccba.Config{Protocol: ccba.Core, N: 1000, F: 300, Lambda: 40, Sparse: true}},
	{Name: "CoreIdealN10kSparse", Cfg: ccba.Config{Protocol: ccba.Core, N: 10_000, F: 3_000, Lambda: 40, Sparse: true}},
	{Name: "CoreIdealN10kSparseW1", Cfg: ccba.Config{Protocol: ccba.Core, N: 10_000, F: 3_000, Lambda: 40, Sparse: true, SparseWorkers: 1}},
	{Name: "CoreIdealN10kSparseW4", Cfg: ccba.Config{Protocol: ccba.Core, N: 10_000, F: 3_000, Lambda: 40, Sparse: true, SparseWorkers: 4}},
	{Name: "CoreRealN10kSparse", Cfg: ccba.Config{Protocol: ccba.Core, N: 10_000, F: 3_000, Lambda: 40, Crypto: ccba.Real, Sparse: true}},
	{Name: "CoreIdealN100kSparse", Cfg: ccba.Config{Protocol: ccba.Core, N: 100_000, F: 30_000, Lambda: 40, Sparse: true}},
	// The E13 stretch point; run explicitly with -only N1MSparse. One
	// execution takes minutes, so it is excluded from the default set.
	{Name: "CoreIdealN1MSparse", Cfg: ccba.Config{Protocol: ccba.Core, N: 1_000_000, F: 300_000, Lambda: 40, Sparse: true}, Heavy: true},
	{Name: "CoreIdealN1000DeltaOne", Cfg: ccba.Config{Protocol: ccba.Core, N: 1000, F: 300, Lambda: 40, Net: ccba.NetDeltaOne, Delta: 1}},
	{Name: "CoreIdealN1000Delta3Worst", Cfg: ccba.Config{Protocol: ccba.Core, N: 1000, F: 300, Lambda: 40, MaxIters: 12, Net: ccba.NetWorstCase, Delta: 3}, AllowViolations: true},
	{Name: "CoreIdealN200Omission25", Cfg: ccba.Config{Protocol: ccba.Core, N: 200, F: 60, Lambda: 40, Net: ccba.NetOmission, OmissionRate: 0.25}, AllowViolations: true},
	{Name: "CoreRealN200", Cfg: ccba.Config{Protocol: ccba.Core, N: 200, F: 60, Lambda: 40, Crypto: ccba.Real}},
	{Name: "QuadraticN101", Cfg: ccba.Config{Protocol: ccba.Quadratic, N: 101, F: 50}},
	{Name: "DolevStrongN48", Cfg: ccba.Config{Protocol: ccba.DolevStrong, N: 48, F: 16, SenderInput: ccba.One}},
	{Name: "PhaseKingSampledN400", Cfg: ccba.Config{Protocol: ccba.PhaseKingSampled, N: 400, F: 80, Lambda: 30, Epochs: 12}},
}

// sweepCase is one tracked trial-sweep configuration: the same 16-trial
// sweep measured serially and on the full worker pool records the harness's
// parallel speedup on whatever host ran the benchmark.
type sweepCase struct {
	Name    string
	Cfg     ccba.Config
	Trials  int
	Workers int // 0 = GOMAXPROCS
}

var sweepCases = []sweepCase{
	{"TrialSweepCoreN200T16W1", ccba.Config{Protocol: ccba.Core, N: 200, F: 60, Lambda: 40}, 16, 1},
	{"TrialSweepCoreN200T16Wmax", ccba.Config{Protocol: ccba.Core, N: 200, F: 60, Lambda: 40}, 16, 0},
	{"TrialSweepPhaseKingSampledN400T16W1", ccba.Config{Protocol: ccba.PhaseKingSampled, N: 400, F: 80, Lambda: 30, Epochs: 12}, 16, 1},
	{"TrialSweepPhaseKingSampledN400T16Wmax", ccba.Config{Protocol: ccba.PhaseKingSampled, N: 400, F: 80, Lambda: 30, Epochs: 12}, 16, 0},
}

// clusterCase is one tracked live-cluster throughput configuration: the
// same protocol executions as the simulator cases, but run on the cluster
// runtime — Instances concurrent agreement instances per op, each on its
// own network. Transport "" is the in-process chan mesh; "tcp" a loopback
// socket mesh. A non-nil Chaos injects that fault schedule at the
// transport, measuring the runtime under deterministic adversity; those
// cases allow violations because liveness under drops is the measured
// degradation, not a failure (safety violations still fail the run).
type clusterCase struct {
	Name            string
	Cfg             ccba.Config
	Instances       int
	Transport       string
	Chaos           *ccba.ChaosConfig
	Opts            cluster.Options
	AllowViolations bool
}

var clusterCases = []clusterCase{
	{Name: "ClusterChanCoreN64", Cfg: ccba.Config{Protocol: ccba.Core, N: 64, F: 19, Lambda: 14}, Instances: 1},
	{Name: "ClusterChanCoreN200", Cfg: ccba.Config{Protocol: ccba.Core, N: 200, F: 60, Lambda: 40}, Instances: 1},
	{Name: "ClusterChanCoreN32x8", Cfg: ccba.Config{Protocol: ccba.Core, N: 32, F: 9, Lambda: 10}, Instances: 8},
	{Name: "ClusterChanQuadraticN31", Cfg: ccba.Config{Protocol: ccba.Quadratic, N: 31, F: 15}, Instances: 1},
	{Name: "ChaosChanCoreN32Drop25", Cfg: ccba.Config{Protocol: ccba.Core, N: 32, F: 9, Lambda: 10, MaxIters: 12},
		Instances: 1, Chaos: &ccba.ChaosConfig{DropRate: 0.25}, AllowViolations: true},
	{Name: "ChaosChanCoreN32Delta2", Cfg: ccba.Config{Protocol: ccba.Core, N: 32, F: 9, Lambda: 10, MaxIters: 12},
		Instances: 1, Chaos: &ccba.ChaosConfig{Delta: 2, DropRate: 0.2, Reorder: 0.2},
		Opts: cluster.Options{RoundInterval: 2 * time.Millisecond, RoundTimeout: 60 * time.Second}, AllowViolations: true},
	{Name: "ChaosTCPCoreN8Delta2", Cfg: ccba.Config{Protocol: ccba.Core, N: 8, F: 2, Lambda: 4, MaxIters: 12},
		Instances: 1, Transport: "tcp", Chaos: &ccba.ChaosConfig{Delta: 2, DropRate: 0.25, Reorder: 0.2},
		Opts: cluster.Options{RoundInterval: 2 * time.Millisecond, RoundTimeout: 60 * time.Second}, AllowViolations: true},
}

// Result is one benchmark measurement. The cluster cases additionally
// report throughput: agreement instances per second, and classical messages
// per second through the transport (derived from the instances-per-sec rate
// and a fixed-seed calibration of messages per instance).
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// GOMAXPROCS and Workers pin the parallelism the case ran with:
	// Workers is the resolved execution worker count (sparse shard
	// stepping or trial pool; 0 for purely serial cases), so speedup
	// comparisons across hosts and PRs need no side-channel.
	GOMAXPROCS int `json:"gomaxprocs"`
	Workers    int `json:"workers,omitempty"`
	// PeakHeapBytes is the maximum live heap (runtime.ReadMemStats
	// HeapAlloc, sampled throughout the run) — the memory-wall axis the
	// large-N work optimises, which allocation totals don't show.
	PeakHeapBytes   uint64  `json:"peak_heap_bytes,omitempty"`
	InstancesPerSec float64 `json:"instances_per_sec,omitempty"`
	MsgsPerSec      float64 `json:"msgs_per_sec,omitempty"`
	// Intern is the attestation intern table's sharing telemetry from a
	// fixed-seed calibration run — sparse cases only, where interning
	// defaults on. Like the cluster msgs/sec calibration, the fixed seed
	// keeps the tracked counts comparable across PRs.
	Intern *ccba.InternStats `json:"intern,omitempty"`
}

// Report is the emitted JSON document.
type Report struct {
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	NumCPU     int      `json:"num_cpu"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Date       string   `json:"date"`
	Notes      []string `json:"notes,omitempty"`
	Results    []Result `json:"results"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	var (
		out       = fs.String("out", "", "write the JSON report to this file (default stdout)")
		benchtime = fs.Int("benchtime", 0, "fixed iteration count per benchmark (default: testing's ~1s auto-scaling)")
		only      = fs.String("only", "", "comma-separated benchmark name substrings to run")
		notes     = fs.String("notes", "", "semicolon-separated annotations recorded in the report")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	maxprocs := runtime.GOMAXPROCS(0)
	rep := Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: maxprocs,
		Date:       time.Now().UTC().Format(time.RFC3339),
	}
	if *notes != "" {
		rep.Notes = strings.Split(*notes, ";")
	}

	// sparseWorkers resolves the shard-stepping worker count a sparse case
	// executes with, mirroring the engine's 0 = GOMAXPROCS default.
	sparseWorkers := func(cfg ccba.Config) int {
		if !cfg.Sparse {
			return 0
		}
		w := cfg.SparseWorkers
		if w <= 0 {
			w = maxprocs
		}
		if w > cfg.N {
			w = cfg.N
		}
		return w
	}

	for _, c := range cases {
		if *only == "" && c.Heavy {
			continue // stretch points run only when named explicitly
		}
		if *only != "" && !matches(c.Name, *only) {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", c.Name)
		intern, err := calibrateIntern(c)
		if err != nil {
			return fmt.Errorf("%s: %w", c.Name, err)
		}
		r, peak := measure(singleRunBody(c.Cfg, c.AllowViolations), *benchtime)
		rep.Results = append(rep.Results, Result{
			Name:          c.Name,
			Iterations:    r.N,
			NsPerOp:       float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:    r.AllocedBytesPerOp(),
			AllocsPerOp:   r.AllocsPerOp(),
			GOMAXPROCS:    maxprocs,
			Workers:       sparseWorkers(c.Cfg),
			PeakHeapBytes: peak,
			Intern:        intern,
		})
	}

	for _, c := range sweepCases {
		if *only != "" && !matches(c.Name, *only) {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", c.Name)
		workers := c.Workers
		if workers <= 0 {
			workers = maxprocs
		}
		r, peak := measure(sweepBody(c), *benchtime)
		rep.Results = append(rep.Results, Result{
			Name:          c.Name,
			Iterations:    r.N,
			NsPerOp:       float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:    r.AllocedBytesPerOp(),
			AllocsPerOp:   r.AllocsPerOp(),
			GOMAXPROCS:    maxprocs,
			Workers:       workers,
			PeakHeapBytes: peak,
		})
	}

	for _, c := range clusterCases {
		if *only != "" && !matches(c.Name, *only) {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", c.Name)
		msgsPerInstance, err := calibrateCluster(c)
		if err != nil {
			return fmt.Errorf("%s: %w", c.Name, err)
		}
		r, peak := measure(clusterBody(c), *benchtime)
		nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
		res := Result{
			Name:          c.Name,
			Iterations:    r.N,
			NsPerOp:       nsPerOp,
			BytesPerOp:    r.AllocedBytesPerOp(),
			AllocsPerOp:   r.AllocsPerOp(),
			GOMAXPROCS:    maxprocs,
			PeakHeapBytes: peak,
		}
		if nsPerOp > 0 {
			res.InstancesPerSec = float64(c.Instances) * 1e9 / nsPerOp
			res.MsgsPerSec = res.InstancesPerSec * msgsPerInstance
		}
		rep.Results = append(rep.Results, res)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(*out, buf, 0o644)
}

func matches(name, only string) bool {
	for _, s := range strings.Split(only, ",") {
		if s != "" && strings.Contains(strings.ToLower(name), strings.ToLower(s)) {
			return true
		}
	}
	return false
}

// singleRunBody measures complete protocol executions, varying the seed per
// iteration exactly like bench_test.go so results stay comparable with
// `go test -bench`.
func singleRunBody(cfg ccba.Config, allowViolations bool) func(i int) error {
	return func(i int) error {
		c := cfg
		c.Seed[29] = byte(i)
		c.Seed[28] = byte(i >> 8)
		rep, err := ccba.Run(c)
		if err != nil {
			return err
		}
		if !rep.Ok() && !allowViolations {
			return fmt.Errorf("violation: %v %v %v", rep.Consistency, rep.Validity, rep.Termination)
		}
		return nil
	}
}

// runCluster executes cfg once on a fresh cluster over the case's
// transport, injecting the case's chaos schedule when one is declared.
func runCluster(c clusterCase, cfg ccba.Config) (*cluster.Report, error) {
	ctx := context.Background()
	var netw transport.Network
	var err error
	if c.Transport == "tcp" {
		netw, err = transport.NewTCPNetwork(ctx, transport.LoopbackAddrs(cfg.N), transport.TCPOptions{})
	} else {
		netw, err = transport.NewChanNetwork(cfg.N)
	}
	if err != nil {
		return nil, err
	}
	defer netw.Close()
	if c.Chaos != nil {
		return cluster.RunChaos(ctx, cfg, netw, *c.Chaos, c.Opts)
	}
	return cluster.Run(ctx, cfg, netw, c.Opts)
}

// calibrateIntern runs one fixed-seed execution of a sparse case and
// returns the report's intern-table sharing stats; nil for dense cases,
// which do not intern. The extra run is what keeps the measured loop free
// of report plumbing.
func calibrateIntern(c benchCase) (*ccba.InternStats, error) {
	if !c.Cfg.Sparse {
		return nil, nil
	}
	rep, err := ccba.Run(c.Cfg)
	if err != nil {
		return nil, err
	}
	if !rep.Ok() && !c.AllowViolations {
		return nil, fmt.Errorf("violation: %v %v %v", rep.Consistency, rep.Validity, rep.Termination)
	}
	return rep.Intern, nil
}

// calibrateCluster measures the classical message count of one fixed-seed
// instance, from which the msgs/sec rate is derived. Seed variation moves
// the count a little between iterations; the fixed-seed figure keeps the
// tracked rate comparable across PRs.
func calibrateCluster(c clusterCase) (float64, error) {
	rep, err := runCluster(c, c.Cfg)
	if err != nil {
		return 0, err
	}
	return float64(rep.Result.Metrics.HonestMessages), nil
}

// clusterBody measures Instances concurrent live agreement instances per
// iteration, each on its own chan network with per-iteration seed
// variation.
func clusterBody(c clusterCase) func(i int) error {
	return func(i int) error {
		errs := make([]error, c.Instances)
		var wg sync.WaitGroup
		for k := 0; k < c.Instances; k++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				cfg := c.Cfg
				cfg.Seed[29] = byte(i)
				cfg.Seed[28] = byte(i >> 8)
				cfg.Seed[27] = byte(k)
				rep, err := runCluster(c, cfg)
				if err == nil && !rep.Ok() {
					v := rep.Consistency != nil || rep.Validity != nil || (!c.AllowViolations && rep.Termination != nil)
					if v {
						err = fmt.Errorf("violation: %v %v %v", rep.Consistency, rep.Validity, rep.Termination)
					}
				}
				errs[k] = err
			}(k)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}
}

// sweepBody measures one harness trial sweep per iteration.
func sweepBody(c sweepCase) func(i int) error {
	return func(i int) error {
		cfg := c.Cfg
		cfg.Seed[27] = byte(i)
		st, err := ccba.RunTrialsOpts(cfg, ccba.TrialOpts{Trials: c.Trials, Workers: c.Workers})
		if err != nil {
			return err
		}
		if st.Violations != 0 {
			return fmt.Errorf("%d violations", st.Violations)
		}
		return nil
	}
}

// heapSampler tracks the maximum live heap (MemStats.HeapAlloc) seen while
// a measurement runs, by polling on a short ticker. Peak heap is the axis
// the large-N memory work moves — a run can allocate terabytes cumulatively
// (bytes_per_op) while never holding more than a few hundred megabytes
// live, and only the latter decides whether a million-node run fits.
type heapSampler struct {
	stop chan struct{}
	done chan struct{}
	peak uint64
}

func startHeapSampler() *heapSampler {
	runtime.GC() // reset the live-heap baseline to this case's state
	s := &heapSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		var ms runtime.MemStats
		t := time.NewTicker(10 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > s.peak {
					s.peak = ms.HeapAlloc
				}
			}
		}
	}()
	return s
}

// finish stops sampling, takes one final reading, and returns the peak.
func (s *heapSampler) finish() uint64 {
	close(s.stop)
	<-s.done
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > s.peak {
		s.peak = ms.HeapAlloc
	}
	return s.peak
}

// measure runs iteration under the testing harness (or a fixed iteration
// count when benchtime is set; testing.Benchmark has no iteration knob, so
// that path times the loop directly and reports through the same type),
// sampling peak live heap across the whole measurement. The sampler's
// 10 ms ReadMemStats polls cost well under a percent of any tracked case.
func measure(iteration func(i int) error, iters int) (testing.BenchmarkResult, uint64) {
	sampler := startHeapSampler()
	if iters > 0 {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := iteration(i); err != nil {
				fmt.Fprintf(os.Stderr, "bench: run failed: %v\n", err)
				os.Exit(1)
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		return testing.BenchmarkResult{
			N:         iters,
			T:         elapsed,
			MemAllocs: after.Mallocs - before.Mallocs,
			MemBytes:  after.TotalAlloc - before.TotalAlloc,
		}, sampler.finish()
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := iteration(i); err != nil {
				b.Fatal(err)
			}
		}
	})
	return r, sampler.finish()
}
