package ccba

import (
	"bytes"
	"testing"
	"testing/quick"

	"ccba/internal/aba"
	"ccba/internal/acs"
	"ccba/internal/brb"
	"ccba/internal/broadcast"
	"ccba/internal/chenmicali"
	"ccba/internal/committee"
	"ccba/internal/core"
	"ccba/internal/dolevstrong"
	"ccba/internal/netsim"
	"ccba/internal/phaseking"
	"ccba/internal/quadratic"
	"ccba/internal/transport"
	"ccba/internal/types"
	"ccba/internal/wire"
)

// Every protocol decoder must treat arbitrary bytes as data, never as a
// crash: malformed input yields an error, not a panic. Messages cross trust
// boundaries in a real deployment, so this is a load-bearing property.
func TestDecodersNeverPanic(t *testing.T) {
	decoders := map[string]func([]byte) (wire.Message, error){
		"core":        core.Decode,
		"quadratic":   quadratic.Decode,
		"phaseking":   phaseking.Decode,
		"chenmicali":  chenmicali.Decode,
		"dolevstrong": dolevstrong.Decode,
		"committee":   committee.Decode,
		"broadcast":   broadcast.Decode,
		"brb":         brb.Decode,
		"aba":         aba.Decode,
		"acs":         acs.Decode,
	}
	for name, decode := range decoders {
		decode := decode
		t.Run(name, func(t *testing.T) {
			f := func(buf []byte) bool {
				// Must return without panicking; error vs message both fine.
				_, _ = decode(buf)
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
				t.Fatal(err)
			}
			// Structured prefixes with garbage tails exercise deeper paths
			// than uniform noise.
			for kind := byte(0); kind < 8; kind++ {
				for size := 0; size < 64; size += 7 {
					buf := make([]byte, size+1)
					buf[0] = kind
					for i := 1; i < len(buf); i++ {
						buf[i] = byte(i * 31)
					}
					_, _ = decode(buf)
				}
			}
		})
	}
}

// deliveryProbe records the messages one node receives through a runtime.
type deliveryProbe struct {
	send   []netsim.Send
	rounds int
	got    []wire.Message
	halted bool
}

func (p *deliveryProbe) Step(round int, delivered []netsim.Delivered) []netsim.Send {
	for _, d := range delivered {
		p.got = append(p.got, d.Msg)
	}
	if round >= p.rounds {
		p.halted = true
		return nil
	}
	if round == 0 {
		return p.send
	}
	return nil
}

func (p *deliveryProbe) Output() (types.Bit, bool) { return types.Zero, false }
func (p *deliveryProbe) Halted() bool              { return p.halted }

// Messages routed through the scheduled-delivery envelope path (Δ > 1
// network models) must round-trip exactly: every delivered message
// re-marshals to the bytes of the one sent, and the honest-byte metrics
// equal Σ wire.Size over the sends — Size() staying exact is what keeps the
// communication-complexity accounting trustworthy once envelopes outlive
// their send round. Driven by quick with arbitrary certificate/eligibility
// payloads.
func TestScheduledDeliveryPreservesEncoding(t *testing.T) {
	const n, delta = 3, 3
	f := func(elig, leaderElig []byte, iter uint32, seedByte uint8) bool {
		sent := []wire.Message{
			core.VoteMsg{Iter: iter, B: One, Elig: elig, Leader: 2, LeaderElig: leaderElig},
			quadratic.VoteMsg{Iter: iter, B: Zero, Sig: leaderElig, LeaderSig: elig},
			chenmicali.AckMsg{Epoch: iter, B: One, Elig: elig, Sig: leaderElig},
		}
		var seed [32]byte
		seed[0] = seedByte
		probes := make([]*deliveryProbe, n)
		nodes := make([]netsim.Node, n)
		for i := range nodes {
			probes[i] = &deliveryProbe{rounds: delta + 1}
			nodes[i] = probes[i]
		}
		probes[0].send = []netsim.Send{
			netsim.Multicast(sent[0]),
			netsim.Unicast(1, sent[1]),
			netsim.Unicast(1, sent[2]),
		}
		rt, err := netsim.NewRuntime(netsim.Config{
			N: n, F: 0, MaxRounds: delta + 3,
			Net: netsim.Jitter(delta, seed),
		}, nodes, nil)
		if err != nil {
			t.Fatal(err)
		}
		res := rt.Run()

		wantBytes := 0
		for _, m := range sent {
			wantBytes += wire.Size(m)
		}
		// One multicast (counted once in multicast bytes) + two unicasts.
		if res.Metrics.HonestMulticastBytes != wire.Size(sent[0]) {
			t.Fatalf("multicast bytes %d, want %d", res.Metrics.HonestMulticastBytes, wire.Size(sent[0]))
		}
		if got := res.Metrics.HonestMessageBytes; got != n*wire.Size(sent[0])+wire.Size(sent[1])+wire.Size(sent[2]) {
			t.Fatalf("classical bytes %d for sends totalling %d", got, wantBytes)
		}
		// Node 1 received all three messages (in some schedule order); each
		// must re-marshal to its canonical bytes and report an exact Size.
		if len(probes[1].got) != len(sent) {
			t.Fatalf("node 1 received %d messages, want %d", len(probes[1].got), len(sent))
		}
		for _, m := range probes[1].got {
			if m.Size() != len(m.Encode(nil)) {
				t.Fatalf("delivered %T: Size()=%d but encoding is %d bytes", m, m.Size(), len(m.Encode(nil)))
			}
			matched := false
			for _, s := range sent {
				if bytes.Equal(wire.Marshal(m), wire.Marshal(s)) {
					matched = true
					break
				}
			}
			if !matched {
				t.Fatalf("delivered %T does not round-trip any sent message", m)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Decoded messages that parse successfully must re-encode to the same bytes
// (canonical encoding), for every protocol's happy path.
func TestDecodeEncodeCanonical(t *testing.T) {
	samples := []wire.Message{
		core.VoteMsg{Iter: 5, B: One, Elig: []byte{1, 2}, Leader: 9, LeaderElig: []byte{3}},
		quadratic.VoteMsg{Iter: 5, B: Zero, Sig: []byte{4}, LeaderSig: []byte{5}},
		phaseking.AckMsg{Epoch: 2, B: One, Elig: []byte{6}},
		chenmicali.AckMsg{Epoch: 2, B: Zero, Elig: []byte{7}, Sig: []byte{8}},
		committee.EchoMsg{B: One},
		broadcast.InputMsg{B: Zero},
		brb.SendMsg{Payload: []byte{9, 8}},
		aba.CoinMsg{Round: 3, Proof: []byte{1, 2, 3}},
		acs.WrapMsg{Slot: 2, Part: acs.PartABA, Inner: aba.BValMsg{Round: 1, B: One}},
	}
	decoders := []func([]byte) (wire.Message, error){
		core.Decode, quadratic.Decode, phaseking.Decode,
		chenmicali.Decode, committee.Decode, broadcast.Decode,
		brb.Decode, aba.Decode, acs.Decode,
	}
	for i, msg := range samples {
		buf := wire.Marshal(msg)
		dec, err := decoders[i](buf)
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		if got := wire.Marshal(dec); string(got) != string(buf) {
			t.Fatalf("sample %d not canonical: % x vs % x", i, got, buf)
		}
	}
}

// The TCP transport's length-prefixed frame decoder faces raw network
// bytes, so it must treat arbitrary input as data: parse exactly one frame
// or fail cleanly — no panic, no over-read, no unbounded allocation from a
// hostile length prefix.
func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add(transport.AppendFrame(nil, []byte("payload")))
	f.Add(transport.AppendFrame(nil, wire.Marshal(core.VoteMsg{Iter: 3, B: One})))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3}) // hostile length prefix
	f.Add([]byte{0, 0, 0, 9, 1, 2, 3})             // truncated body
	f.Fuzz(func(t *testing.T, buf []byte) {
		payload, rest, err := transport.ParseFrame(buf)
		if err != nil {
			// Failed parses must not consume input.
			if len(rest) != len(buf) {
				t.Fatalf("failed parse consumed %d bytes", len(buf)-len(rest))
			}
			return
		}
		// A successful parse consumes exactly prefix+payload and no more.
		if len(payload) > transport.MaxFrame {
			t.Fatalf("oversized payload accepted: %d bytes", len(payload))
		}
		if 4+len(payload)+len(rest) != len(buf) {
			t.Fatalf("over-read: %d payload + %d rest from %d input", len(payload), len(rest), len(buf))
		}
		// Re-framing the payload reproduces the consumed bytes.
		if reframed := transport.AppendFrame(nil, payload); !bytes.Equal(reframed, buf[:4+len(payload)]) {
			t.Fatalf("frame not canonical")
		}
	})
}

// Cluster envelopes also cross the trust boundary; their decoder gets the
// same treatment, plus the canonical round-trip property on valid input.
func FuzzEnvelopeDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(transport.AppendEnvelope(nil, transport.Envelope{Kind: transport.EnvSync, From: 3, Round: 7, Halted: true}))
	f.Add(transport.AppendEnvelope(nil, transport.Envelope{
		Kind: transport.EnvData, From: 1, Round: 2, Seq: 5,
		Payload: wire.Marshal(core.VoteMsg{Iter: 3, B: One, Elig: []byte{9}}),
	}))
	f.Fuzz(func(t *testing.T, buf []byte) {
		env, err := transport.DecodeEnvelope(buf)
		if err != nil {
			return
		}
		if !bytes.Equal(transport.AppendEnvelope(nil, env), buf) {
			t.Fatalf("envelope decode of % x not canonical", buf)
		}
	})
}

// The async-track decoders (BRB, ABA, and the slot-wrapping ACS envelope)
// face the same trust boundary as every other codec: arbitrary bytes must
// parse cleanly or fail with an error — no panic, no over-read. The first
// input byte selects the decoder so one corpus covers all three; a
// successful parse must be canonical (re-marshal reproduces the input
// exactly, so a decoder that silently ignored trailing bytes would fail
// here) and must report an exact Size().
func FuzzAsyncDecode(f *testing.F) {
	mark := func(sel byte, m wire.Message) []byte {
		return append([]byte{sel}, wire.Marshal(m)...)
	}
	f.Add([]byte{})
	f.Add(mark(0, brb.SendMsg{Payload: []byte("hi")}))
	f.Add(mark(0, brb.ReadyMsg{Payload: []byte("m")}))
	f.Add(mark(1, aba.BValMsg{Round: 1, B: One}))
	f.Add(mark(1, aba.CoinMsg{Round: 2, Proof: []byte("abc")}))
	f.Add(mark(1, aba.DoneMsg{B: Zero}))
	f.Add(mark(2, acs.WrapMsg{Slot: 2, Part: acs.PartABA, Inner: aba.BValMsg{Round: 1, B: One}}))
	f.Add(mark(2, acs.WrapMsg{Slot: 0, Part: acs.PartBRB, Inner: brb.EchoMsg{Payload: []byte{6}}}))
	f.Add([]byte{1, 3, 0, 0})                      // truncated ABA coin
	f.Add([]byte{2, 1, 0, 0, 0, 0, 9})             // ACS wrap with unknown part
	f.Add([]byte{0, 1, 0xFF, 0xFF, 0xFF, 0xFF, 1}) // hostile BRB length prefix
	decoders := []func([]byte) (wire.Message, error){brb.Decode, aba.Decode, acs.Decode}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		buf := data[1:]
		m, err := decoders[int(data[0])%len(decoders)](buf)
		if err != nil {
			return
		}
		enc := m.Encode(nil)
		if m.Size() != len(enc) {
			t.Fatalf("%T: Size()=%d but encoding is %d bytes", m, m.Size(), len(enc))
		}
		if !bytes.Equal(wire.Marshal(m), buf) {
			t.Fatalf("%T decode of % x not canonical: re-marshals to % x", m, buf, wire.Marshal(m))
		}
	})
}

// The hello handshake is the one frame a TCP endpoint reads before it knows
// who is talking, so its decoder faces the rawest input of all: arbitrary
// bytes must yield a descriptive error, never a panic, and only a
// well-formed hello naming an in-range peer may pass.
func FuzzHelloDecode(f *testing.F) {
	f.Add([]byte{}, uint16(4))
	f.Add(transport.HelloFrame(2, 4)[4:], uint16(4)) // valid hello (frame prefix stripped)
	f.Add(transport.HelloFrame(2, 4)[4:], uint16(3)) // size mismatch
	f.Add(transport.HelloFrame(9, 4)[4:], uint16(4)) // out-of-range dialer
	f.Add(transport.AppendEnvelope(nil, transport.Envelope{Kind: transport.EnvData, From: 1}), uint16(4))
	f.Add(transport.AppendEnvelope(nil, transport.Envelope{Kind: transport.EnvHello, From: 1, Payload: []byte("wrong magic....")}), uint16(4))
	f.Fuzz(func(t *testing.T, buf []byte, n uint16) {
		if n == 0 {
			n = 1
		}
		from, err := transport.DecodeHello(buf, int(n))
		if err != nil {
			if err.Error() == "" {
				t.Fatal("rejection without a reason")
			}
			return
		}
		if int(from) < 0 || int(from) >= int(n) {
			t.Fatalf("accepted hello from out-of-range node %d (n=%d)", from, n)
		}
		// An accepted hello is canonical: the dialer's own frame for the
		// same identity reproduces it.
		if !bytes.Equal(transport.HelloFrame(from, int(n))[4:], buf) {
			t.Fatalf("accepted non-canonical hello % x", buf)
		}
	})
}

// Exact-size frames of every protocol's messages round-trip through the
// frame + envelope layers byte for byte — the property the TCP transport's
// metrics and golden equivalence rest on.
func TestFrameEnvelopeRoundTripProtocolMessages(t *testing.T) {
	msgs := []wire.Message{
		core.VoteMsg{Iter: 5, B: One, Elig: []byte{1, 2}, Leader: 9, LeaderElig: []byte{3}},
		quadratic.VoteMsg{Iter: 5, B: Zero, Sig: []byte{4}, LeaderSig: []byte{5}},
		phaseking.AckMsg{Epoch: 2, B: One, Elig: []byte{6}},
		chenmicali.AckMsg{Epoch: 2, B: Zero, Elig: []byte{7}, Sig: []byte{8}},
		committee.EchoMsg{B: One},
		broadcast.InputMsg{B: Zero},
		brb.ReadyMsg{Payload: []byte{7}},
		aba.DoneMsg{B: One},
		acs.WrapMsg{Slot: 5, Part: acs.PartBRB, Inner: brb.EchoMsg{Payload: []byte{6}}},
	}
	var stream []byte
	for i, m := range msgs {
		env := transport.Envelope{
			Kind: transport.EnvData, From: types.NodeID(i), Round: uint32(i), Seq: uint32(i),
			Payload: wire.Marshal(m),
		}
		stream = transport.AppendFrame(stream, transport.AppendEnvelope(nil, env))
	}
	for i, m := range msgs {
		var frame []byte
		var err error
		frame, stream, err = transport.ParseFrame(stream)
		if err != nil {
			t.Fatal(err)
		}
		env, err := transport.DecodeEnvelope(frame)
		if err != nil {
			t.Fatal(err)
		}
		if env.From != types.NodeID(i) || !bytes.Equal(env.Payload, wire.Marshal(m)) {
			t.Fatalf("message %d did not survive framing", i)
		}
	}
	if len(stream) != 0 {
		t.Fatalf("%d trailing bytes", len(stream))
	}
}
