package ccba

import (
	"testing"
	"testing/quick"

	"ccba/internal/broadcast"
	"ccba/internal/chenmicali"
	"ccba/internal/committee"
	"ccba/internal/core"
	"ccba/internal/dolevstrong"
	"ccba/internal/phaseking"
	"ccba/internal/quadratic"
	"ccba/internal/wire"
)

// Every protocol decoder must treat arbitrary bytes as data, never as a
// crash: malformed input yields an error, not a panic. Messages cross trust
// boundaries in a real deployment, so this is a load-bearing property.
func TestDecodersNeverPanic(t *testing.T) {
	decoders := map[string]func([]byte) (wire.Message, error){
		"core":        core.Decode,
		"quadratic":   quadratic.Decode,
		"phaseking":   phaseking.Decode,
		"chenmicali":  chenmicali.Decode,
		"dolevstrong": dolevstrong.Decode,
		"committee":   committee.Decode,
		"broadcast":   broadcast.Decode,
	}
	for name, decode := range decoders {
		decode := decode
		t.Run(name, func(t *testing.T) {
			f := func(buf []byte) bool {
				// Must return without panicking; error vs message both fine.
				_, _ = decode(buf)
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
				t.Fatal(err)
			}
			// Structured prefixes with garbage tails exercise deeper paths
			// than uniform noise.
			for kind := byte(0); kind < 8; kind++ {
				for size := 0; size < 64; size += 7 {
					buf := make([]byte, size+1)
					buf[0] = kind
					for i := 1; i < len(buf); i++ {
						buf[i] = byte(i * 31)
					}
					_, _ = decode(buf)
				}
			}
		})
	}
}

// Decoded messages that parse successfully must re-encode to the same bytes
// (canonical encoding), for every protocol's happy path.
func TestDecodeEncodeCanonical(t *testing.T) {
	samples := []wire.Message{
		core.VoteMsg{Iter: 5, B: One, Elig: []byte{1, 2}, Leader: 9, LeaderElig: []byte{3}},
		quadratic.VoteMsg{Iter: 5, B: Zero, Sig: []byte{4}, LeaderSig: []byte{5}},
		phaseking.AckMsg{Epoch: 2, B: One, Elig: []byte{6}},
		chenmicali.AckMsg{Epoch: 2, B: Zero, Elig: []byte{7}, Sig: []byte{8}},
		committee.EchoMsg{B: One},
		broadcast.InputMsg{B: Zero},
	}
	decoders := []func([]byte) (wire.Message, error){
		core.Decode, quadratic.Decode, phaseking.Decode,
		chenmicali.Decode, committee.Decode, broadcast.Decode,
	}
	for i, msg := range samples {
		buf := wire.Marshal(msg)
		dec, err := decoders[i](buf)
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		if got := wire.Marshal(dec); string(got) != string(buf) {
			t.Fatalf("sample %d not canonical: % x vs % x", i, got, buf)
		}
	}
}
