package ccba

import (
	"testing"
)

// The sparse large-N engine path (Config.Sparse, DESIGN.md §6) must be
// observationally equivalent to the dense engine wherever it applies. Two
// layers of pinning:
//
//   - the PR1 fixed-seed goldens reproduce bit-for-bit under Sparse —
//     same outputs digest, rounds, and all four metrics counters;
//   - a sweep across every protocol (both crypto modes where relevant)
//     compares a sparse run against a dense run of the same config.

func TestSparseMatchesGoldens(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name+"/sparse", func(t *testing.T) {
			cfg := tc.cfg
			cfg.Seed[0] = 7
			cfg.Sparse = true
			rep, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Ok() {
				t.Fatalf("violation: consistency=%v validity=%v termination=%v",
					rep.Consistency, rep.Validity, rep.Termination)
			}
			if got := outputsDigest(rep); got != tc.outputs {
				t.Errorf("outputs digest = %s, want %s", got, tc.outputs)
			}
			if rep.Rounds != tc.rounds {
				t.Errorf("rounds = %d, want %d", rep.Rounds, tc.rounds)
			}
			if rep.Result.Metrics != tc.metrics {
				t.Errorf("metrics = %+v, want %+v", rep.Result.Metrics, tc.metrics)
			}
			if rep.Result.Sparse == nil {
				t.Errorf("sparse run missing telemetry")
			}
		})
	}
}

func TestSparseMatchesDenseAcrossProtocols(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"core-ideal", Config{Protocol: Core, N: 120, F: 36, Lambda: 20}},
		{"core-real", Config{Protocol: Core, N: 48, F: 14, Lambda: 12, Crypto: Real}},
		{"core-broadcast", Config{Protocol: CoreBroadcast, N: 60, F: 18, Lambda: 14, SenderInput: One}},
		{"quadratic", Config{Protocol: Quadratic, N: 31, F: 15}},
		{"phaseking-plain", Config{Protocol: PhaseKingPlain, N: 30, F: 9, Epochs: 8}},
		{"phaseking-sampled", Config{Protocol: PhaseKingSampled, N: 90, F: 18, Lambda: 24, Epochs: 10}},
		{"chenmicali", Config{Protocol: ChenMicali, N: 60, F: 20, Lambda: 24, Epochs: 6}},
		{"dolevstrong", Config{Protocol: DolevStrong, N: 24, F: 8, SenderInput: One}},
		{"committee-echo", Config{Protocol: CommitteeEcho, N: 64, F: 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(sparse bool) *Report {
				cfg := tc.cfg
				cfg.Seed[0] = 11
				cfg.Sparse = sparse
				rep, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return rep
			}
			d, s := run(false), run(true)
			if d.Rounds != s.Rounds || d.Result.Metrics != s.Result.Metrics {
				t.Fatalf("rounds/metrics: dense %d %+v, sparse %d %+v",
					d.Rounds, d.Result.Metrics, s.Rounds, s.Result.Metrics)
			}
			for i := range d.Outputs {
				if d.Outputs[i] != s.Outputs[i] || d.Decided[i] != s.Decided[i] || d.Halted[i] != s.Halted[i] {
					t.Fatalf("node %d: dense (%v,%v,%v) sparse (%v,%v,%v)", i,
						d.Outputs[i], d.Decided[i], d.Halted[i],
						s.Outputs[i], s.Decided[i], s.Halted[i])
				}
			}
			// The checker verdicts — streaming on the sparse path — must
			// agree too.
			if (d.Consistency == nil) != (s.Consistency == nil) ||
				(d.Validity == nil) != (s.Validity == nil) ||
				(d.Termination == nil) != (s.Termination == nil) {
				t.Fatalf("checker verdicts differ: dense (%v,%v,%v) sparse (%v,%v,%v)",
					d.Consistency, d.Validity, d.Termination,
					s.Consistency, s.Validity, s.Termination)
			}
		})
	}
}

// Illegal sparse combinations must be rejected at the scenario layer with
// an explanatory error, before any nodes are built.
func TestSparseConfigRejections(t *testing.T) {
	base := Config{Protocol: Core, N: 40, F: 12, Lambda: 10, Sparse: true}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"worst-case-net", func(c *Config) { c.Net = NetWorstCase; c.Delta = 2 }},
		{"jitter-net", func(c *Config) { c.Net = NetJitter; c.Delta = 2 }},
		{"parallel", func(c *Config) { c.Parallel = true }},
		{"adversary", func(c *Config) {
			adv, err := NewAdversary("silent", *c, 0)
			if err != nil {
				t.Fatal(err)
			}
			c.Adversary = adv
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Fatalf("config %+v unexpectedly accepted", cfg)
			}
		})
	}
}
