package ccba

import (
	"fmt"
	"testing"
)

// The sparse large-N engine path (Config.Sparse, DESIGN.md §6) must be
// observationally equivalent to the dense engine wherever it applies. Two
// layers of pinning:
//
//   - the PR1 fixed-seed goldens reproduce bit-for-bit under Sparse —
//     same outputs digest, rounds, and all four metrics counters — at
//     every sharded-stepping worker count (sparse runs default interning
//     on, so this also pins interned ≡ owned attestation storage);
//   - a sweep across every protocol (both crypto modes where relevant)
//     compares sparse runs at workers ∈ {1, 4} against a dense run of the
//     same config.

// sparseEquivWorkers are the worker counts the equivalence suite sweeps:
// serial and a sharded split.
var sparseEquivWorkers = []int{1, 4}

func TestSparseMatchesGoldens(t *testing.T) {
	for _, tc := range goldenCases {
		for _, workers := range sparseEquivWorkers {
			t.Run(fmt.Sprintf("%s/sparse-w%d", tc.name, workers), func(t *testing.T) {
				cfg := tc.cfg
				cfg.Seed[0] = 7
				cfg.Sparse = true
				cfg.SparseWorkers = workers
				rep, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !rep.Ok() {
					t.Fatalf("violation: consistency=%v validity=%v termination=%v",
						rep.Consistency, rep.Validity, rep.Termination)
				}
				if got := outputsDigest(rep); got != tc.outputs {
					t.Errorf("outputs digest = %s, want %s", got, tc.outputs)
				}
				if rep.Rounds != tc.rounds {
					t.Errorf("rounds = %d, want %d", rep.Rounds, tc.rounds)
				}
				if rep.Result.Metrics != tc.metrics {
					t.Errorf("metrics = %+v, want %+v", rep.Result.Metrics, tc.metrics)
				}
				if rep.Result.Sparse == nil {
					t.Errorf("sparse run missing telemetry")
				} else if rep.Result.Sparse.Workers != workers {
					t.Errorf("telemetry workers = %d, want %d", rep.Result.Sparse.Workers, workers)
				}
			})
		}
	}
}

func TestSparseMatchesDenseAcrossProtocols(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"core-ideal", Config{Protocol: Core, N: 120, F: 36, Lambda: 20}},
		{"core-real", Config{Protocol: Core, N: 48, F: 14, Lambda: 12, Crypto: Real}},
		{"core-broadcast", Config{Protocol: CoreBroadcast, N: 60, F: 18, Lambda: 14, SenderInput: One}},
		{"quadratic", Config{Protocol: Quadratic, N: 31, F: 15}},
		{"phaseking-plain", Config{Protocol: PhaseKingPlain, N: 30, F: 9, Epochs: 8}},
		{"phaseking-sampled", Config{Protocol: PhaseKingSampled, N: 90, F: 18, Lambda: 24, Epochs: 10}},
		{"chenmicali", Config{Protocol: ChenMicali, N: 60, F: 20, Lambda: 24, Epochs: 6}},
		{"dolevstrong", Config{Protocol: DolevStrong, N: 24, F: 8, SenderInput: One}},
		{"committee-echo", Config{Protocol: CommitteeEcho, N: 64, F: 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(sparse bool, workers int) *Report {
				cfg := tc.cfg
				cfg.Seed[0] = 11
				cfg.Sparse = sparse
				cfg.SparseWorkers = workers
				rep, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return rep
			}
			d := run(false, 0)
			for _, workers := range sparseEquivWorkers {
				s := run(true, workers)
				if d.Rounds != s.Rounds || d.Result.Metrics != s.Result.Metrics {
					t.Fatalf("w%d: rounds/metrics: dense %d %+v, sparse %d %+v",
						workers, d.Rounds, d.Result.Metrics, s.Rounds, s.Result.Metrics)
				}
				for i := range d.Outputs {
					if d.Outputs[i] != s.Outputs[i] || d.Decided[i] != s.Decided[i] || d.Halted[i] != s.Halted[i] {
						t.Fatalf("w%d node %d: dense (%v,%v,%v) sparse (%v,%v,%v)", workers, i,
							d.Outputs[i], d.Decided[i], d.Halted[i],
							s.Outputs[i], s.Decided[i], s.Halted[i])
					}
				}
				// The checker verdicts — streaming on the sparse path — must
				// agree too.
				if (d.Consistency == nil) != (s.Consistency == nil) ||
					(d.Validity == nil) != (s.Validity == nil) ||
					(d.Termination == nil) != (s.Termination == nil) {
					t.Fatalf("w%d: checker verdicts differ: dense (%v,%v,%v) sparse (%v,%v,%v)",
						workers, d.Consistency, d.Validity, d.Termination,
						s.Consistency, s.Validity, s.Termination)
				}
			}
		})
	}
}

// Illegal sparse combinations must be rejected at the scenario layer with
// an explanatory error, before any nodes are built.
func TestSparseConfigRejections(t *testing.T) {
	base := Config{Protocol: Core, N: 40, F: 12, Lambda: 10, Sparse: true}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"worst-case-net", func(c *Config) { c.Net = NetWorstCase; c.Delta = 2 }},
		{"jitter-net", func(c *Config) { c.Net = NetJitter; c.Delta = 2 }},
		{"parallel", func(c *Config) { c.Parallel = true }},
		{"workers-without-sparse", func(c *Config) { c.Sparse = false; c.SparseWorkers = 4 }},
		{"negative-workers", func(c *Config) { c.SparseWorkers = -1 }},
		{"adversary", func(c *Config) {
			adv, err := NewAdversary("silent", *c, 0)
			if err != nil {
				t.Fatal(err)
			}
			c.Adversary = adv
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Fatalf("config %+v unexpectedly accepted", cfg)
			}
		})
	}
}
