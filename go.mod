module ccba

go 1.24
