package ccba

import (
	"context"
	"testing"

	"ccba/internal/cluster"
	"ccba/internal/netsim"
	"ccba/internal/transport"
	"ccba/internal/wire"
)

// The headline proof of the live runtime: for the fixed-seed goldens (core
// ideal/real, quadratic — the same configurations determinism_test.go pins
// at Δ=1), a chan-transport cluster run decides the same values with the
// same per-node multicast counts as the lockstep engine. Simulator and
// system agree bit-for-bit on the protocol-visible facts.

// runClusterChan executes one golden config live on the in-process
// transport.
func runClusterChan(t *testing.T, cfg Config) *cluster.Report {
	t.Helper()
	netw, err := transport.NewChanNetwork(cfg.N)
	if err != nil {
		t.Fatal(err)
	}
	defer netw.Close()
	rep, err := cluster.Run(context.Background(), cfg, netw, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// senderTally wraps a lockstep node to tally its own sends — the per-node
// view of the communication accounting, which the aggregate-only engine
// metrics cannot provide.
type senderTally struct {
	netsim.Node
	n       int
	metrics *netsim.Metrics
}

func (c *senderTally) Step(round int, delivered []netsim.Delivered) []netsim.Send {
	sends := c.Node.Step(round, delivered)
	for _, s := range sends {
		c.metrics.CountSend(s.To, c.n, wire.Size(s.Msg))
	}
	return sends
}

func TestClusterChanMatchesGoldens(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.Seed[0] = 7
			rep := runClusterChan(t, cfg)
			if !rep.Ok() {
				t.Fatalf("violation: consistency=%v validity=%v termination=%v",
					rep.Consistency, rep.Validity, rep.Termination)
			}
			if got := outputsDigest(rep.Report); got != tc.outputs {
				t.Errorf("outputs digest = %s, want golden %s", got, tc.outputs)
			}
			if rep.Rounds != tc.rounds {
				t.Errorf("rounds = %d, want golden %d", rep.Rounds, tc.rounds)
			}
			if rep.Result.Metrics != tc.metrics {
				t.Errorf("metrics = %+v, want golden %+v", rep.Result.Metrics, tc.metrics)
			}
		})
	}
}

func TestClusterChanPerNodeMulticastsMatchLockstep(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.Seed[0] = 7

			// Lockstep engine with a per-node send tally wrapped around each
			// state machine.
			norm, err := cfg.Normalized()
			if err != nil {
				t.Fatal(err)
			}
			nodes, _, steps, err := BuildNodes(norm)
			if err != nil {
				t.Fatal(err)
			}
			perNode := make([]netsim.Metrics, norm.N)
			wrapped := make([]netsim.Node, norm.N)
			for i, nd := range nodes {
				wrapped[i] = &senderTally{Node: nd, n: norm.N, metrics: &perNode[i]}
			}
			rt, err := netsim.NewRuntime(netsim.Config{N: norm.N, F: norm.F, MaxRounds: steps}, wrapped, nil)
			if err != nil {
				t.Fatal(err)
			}
			res := rt.Run()

			live := runClusterChan(t, cfg)
			for i := range perNode {
				if live.PerNode[i].HonestMulticasts != perNode[i].HonestMulticasts {
					t.Errorf("node %d multicasts: live %d vs lockstep %d",
						i, live.PerNode[i].HonestMulticasts, perNode[i].HonestMulticasts)
				}
				if live.PerNode[i] != perNode[i] {
					t.Errorf("node %d metrics: live %+v vs lockstep %+v", i, live.PerNode[i], perNode[i])
				}
				if live.Outputs[i] != res.Outputs[i] || live.Decided[i] != res.Decided[i] {
					t.Errorf("node %d decision: live (%v,%v) vs lockstep (%v,%v)",
						i, live.Outputs[i], live.Decided[i], res.Outputs[i], res.Decided[i])
				}
			}
			// The tallies must also reconcile with the engine's aggregate —
			// the wrapper measures what the engine measures.
			var sum netsim.Metrics
			for _, m := range perNode {
				sum.Add(m)
			}
			if sum != res.Metrics {
				t.Errorf("per-node tallies sum to %+v but the engine measured %+v", sum, res.Metrics)
			}
		})
	}
}
