package ccba

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"
)

// The golden values below were captured from the pre-refactor round engine
// (the seed tree, commit 3c34f38) and pin the full observable behaviour of a
// fixed-seed execution: a hash of every node's (output, decided) pair, the
// round count, and all four communication-complexity counters. The
// zero-allocation engine must reproduce them bit-for-bit, serially and on
// the worker pool — buffer reuse that changed delivery order, metrics
// accounting, or coin derivation would show up here immediately.

type goldenCase struct {
	name    string
	cfg     Config
	outputs string // first 16 hex chars of sha256 over (outputs, decided)
	rounds  int
	metrics Metrics
}

var goldenCases = []goldenCase{
	{
		name:    "core-ideal-n80",
		cfg:     Config{Protocol: Core, N: 80, F: 24, Lambda: 16, Crypto: Ideal},
		outputs: "4d30e1f10fb6597b",
		rounds:  11,
		metrics: Metrics{
			HonestMulticasts:     101,
			HonestMulticastBytes: 34613,
			HonestMessages:       8080,
			HonestMessageBytes:   2769040,
		},
	},
	{
		name:    "core-real-n40",
		cfg:     Config{Protocol: Core, N: 40, F: 12, Lambda: 12, Crypto: Real},
		outputs: "fb8e69bdfa2ad15b",
		rounds:  7,
		metrics: Metrics{
			HonestMulticasts:     53,
			HonestMulticastBytes: 16134,
			HonestMessages:       2120,
			HonestMessageBytes:   645360,
		},
	},
	{
		name:    "quadratic-n31",
		cfg:     Config{Protocol: Quadratic, N: 31, F: 15},
		outputs: "332810fe8e8b97f1",
		rounds:  7,
		metrics: Metrics{
			HonestMulticasts:     156,
			HonestMulticastBytes: 152019,
			HonestMessages:       4836,
			HonestMessageBytes:   4712589,
		},
	},
}

func outputsDigest(rep *Report) string {
	h := sha256.New()
	for _, b := range rep.Outputs {
		h.Write([]byte{byte(b)})
	}
	for _, d := range rep.Decided {
		v := byte(0)
		if d {
			v = 1
		}
		h.Write([]byte{v})
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

func TestFixedSeedGoldens(t *testing.T) {
	for _, tc := range goldenCases {
		for _, parallel := range []bool{false, true} {
			name := tc.name + "/serial"
			if parallel {
				name = tc.name + "/parallel"
			}
			t.Run(name, func(t *testing.T) {
				cfg := tc.cfg
				cfg.Seed[0] = 7
				cfg.Parallel = parallel
				rep, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !rep.Ok() {
					t.Fatalf("violation: consistency=%v validity=%v termination=%v",
						rep.Consistency, rep.Validity, rep.Termination)
				}
				if got := outputsDigest(rep); got != tc.outputs {
					t.Errorf("outputs digest = %s, want %s", got, tc.outputs)
				}
				if rep.Rounds != tc.rounds {
					t.Errorf("rounds = %d, want %d", rep.Rounds, tc.rounds)
				}
				if rep.Result.Metrics != tc.metrics {
					t.Errorf("metrics = %+v, want %+v", rep.Result.Metrics, tc.metrics)
				}
			})
		}
	}
}

// The pluggable network-model layer must leave the default path untouched:
// an explicitly selected delta-one model (the lockstep fast path) and the
// general scheduler's Δ=1 behavior both reproduce the pre-refactor goldens
// bit for bit.
func TestDeltaOneExplicitMatchesGoldens(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.Seed[0] = 7
			cfg.Net = NetDeltaOne
			cfg.Delta = 1
			rep, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := outputsDigest(rep); got != tc.outputs {
				t.Errorf("outputs digest = %s, want %s", got, tc.outputs)
			}
			if rep.Rounds != tc.rounds {
				t.Errorf("rounds = %d, want %d", rep.Rounds, tc.rounds)
			}
			if rep.Result.Metrics != tc.metrics {
				t.Errorf("metrics = %+v, want %+v", rep.Result.Metrics, tc.metrics)
			}
		})
	}
}

// Two executions of the same configuration must agree exactly — including
// across serial and parallel stepping — beyond the spot-checked goldens:
// every output, decision flag, and halt flag.
func TestSerialParallelIdentical(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(parallel bool) *Report {
				cfg := tc.cfg
				cfg.Seed[0] = 7
				cfg.Parallel = parallel
				rep, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return rep
			}
			a, b := run(false), run(true)
			for i := range a.Outputs {
				if a.Outputs[i] != b.Outputs[i] || a.Decided[i] != b.Decided[i] || a.Halted[i] != b.Halted[i] {
					t.Fatalf("node %d: serial (%v,%v,%v) vs parallel (%v,%v,%v)",
						i, a.Outputs[i], a.Decided[i], a.Halted[i],
						b.Outputs[i], b.Decided[i], b.Halted[i])
				}
			}
			if a.Rounds != b.Rounds || a.Result.Metrics != b.Result.Metrics {
				t.Fatalf("rounds/metrics differ: %d %+v vs %d %+v",
					a.Rounds, a.Result.Metrics, b.Rounds, b.Result.Metrics)
			}
		})
	}
}
