// Package ccba is a Go reproduction of "Communication Complexity of
// Byzantine Agreement, Revisited" (Abraham, Chan, Dolev, Nayak, Pass, Ren,
// Shi — PODC 2019).
//
// It provides:
//
//   - the paper's primary contribution — a synchronous Byzantine Agreement
//     protocol with polylogarithmic multicast complexity, resilience
//     f < (1/2−ε)n against a weakly adaptive adversary, and expected O(1)
//     rounds (Protocol Core), in both the F_mine-hybrid world and a
//     real-crypto world (Ed25519-based VRF over a trusted PKI);
//   - every baseline the paper reasons about: the plain and sub-sampled
//     phase-king warm-ups (§3.1–3.2), the quadratic protocol of Appendix
//     C.1, Dolev–Strong, a static CRS committee protocol, and a
//     Chen–Micali-style non-bit-specific variant with optional memory
//     erasure;
//   - the execution model of Appendix A.1 (synchronous rounds, rushing
//     adaptive adversaries, enforced after-the-fact-removal boundary) and a
//     library of attack strategies, including the Theorem 1 and Theorem 3
//     lower-bound adversaries.
//
// The top-level API runs one protocol instance under one adversary:
//
//	cfg := ccba.Config{Protocol: ccba.Core, N: 200, F: 60, Lambda: 40}
//	report, err := ccba.Run(cfg)
//
// Report carries the execution result, communication metrics, and the
// outcome of the consistency/validity/termination checkers. Everything is
// deterministic given Config.Seed.
package ccba

import (
	"fmt"

	"ccba/internal/broadcast"
	"ccba/internal/chenmicali"
	"ccba/internal/committee"
	"ccba/internal/core"
	"ccba/internal/crypto/pki"
	"ccba/internal/dolevstrong"
	"ccba/internal/fmine"
	"ccba/internal/harness"
	"ccba/internal/leader"
	"ccba/internal/netsim"
	"ccba/internal/phaseking"
	"ccba/internal/quadratic"
	"ccba/internal/stats"
	"ccba/internal/types"
)

// Re-exported primitive types, so callers outside the module never need the
// internal packages.
type (
	// Bit is a binary consensus value.
	Bit = types.Bit
	// NodeID identifies a participant.
	NodeID = types.NodeID
	// Result is a completed execution.
	Result = netsim.Result
	// Metrics is the communication-complexity accounting of Definitions 6–7.
	Metrics = netsim.Metrics
	// Adversary is a pluggable corruption strategy.
	Adversary = netsim.Adversary
	// Node is the sans-I/O protocol state machine interface.
	Node = netsim.Node
)

// Re-exported bit values.
const (
	Zero  = types.Zero
	One   = types.One
	NoBit = types.NoBit
)

// Protocol selects which of the implemented protocols to run.
type Protocol string

// The implemented protocols.
const (
	// Core is the paper's primary contribution (Appendix C.2).
	Core Protocol = "core"
	// CoreBroadcast wraps Core in the §1.1 BB-from-BA reduction.
	CoreBroadcast Protocol = "core-broadcast"
	// Quadratic is the Appendix C.1 baseline.
	Quadratic Protocol = "quadratic"
	// PhaseKingPlain is the §3.1 warm-up.
	PhaseKingPlain Protocol = "phaseking"
	// PhaseKingSampled is the §3.2 sub-sampled warm-up.
	PhaseKingSampled Protocol = "phaseking-sampled"
	// ChenMicali is the non-bit-specific ablation (§3.2 strawman).
	ChenMicali Protocol = "chenmicali"
	// DolevStrong is the classic broadcast baseline.
	DolevStrong Protocol = "dolevstrong"
	// CommitteeEcho is the static CRS committee broadcast baseline.
	CommitteeEcho Protocol = "committee"
)

// Broadcast reports whether the protocol solves the broadcast version
// (designated sender) rather than the agreement version.
func (p Protocol) Broadcast() bool {
	switch p {
	case DolevStrong, CommitteeEcho, CoreBroadcast:
		return true
	default:
		return false
	}
}

// CryptoMode selects the hybrid or real-crypto instantiation.
type CryptoMode string

// The crypto modes.
const (
	// Ideal runs in the F_mine-hybrid world of Figure 1 (and idealized
	// leader election where applicable).
	Ideal CryptoMode = "ideal"
	// Real runs the Appendix D compiler: Ed25519 VRF eligibility and real
	// signatures over a trusted PKI.
	Real CryptoMode = "real"
)

// Config parameterises one execution.
type Config struct {
	// Protocol to run.
	Protocol Protocol
	// N is the node count; F the corruption budget.
	N, F int
	// Lambda is the expected committee size (committee-sampled protocols).
	Lambda int
	// Epochs is the epoch count for phase-king-style protocols (default 20).
	Epochs int
	// MaxIters bounds certificate-protocol iterations (default 60).
	MaxIters int
	// Crypto selects hybrid or real instantiation (default Ideal).
	Crypto CryptoMode
	// Seed makes the execution reproducible.
	Seed [32]byte
	// Inputs are the per-node input bits (agreement protocols). Defaults to
	// alternating bits.
	Inputs []Bit
	// Sender and SenderInput configure broadcast protocols. The zero values
	// mean sender 0 broadcasting bit 0.
	Sender      NodeID
	SenderInput Bit
	// CommitteeSize configures the CommitteeEcho baseline (default 2·log₂n).
	CommitteeSize int
	// Erasure enables the memory-erasure model (ChenMicali only).
	Erasure bool
	// Adversary is the corruption strategy (nil = passive).
	Adversary Adversary
	// Parallel steps nodes on multiple goroutines.
	Parallel bool
}

// Report is the outcome of Run: the raw result plus the paper's three
// security properties evaluated over forever-honest nodes.
type Report struct {
	*Result
	// Inputs used (agreement version).
	Inputs []Bit
	// Consistency, Validity, and Termination hold the checker outcomes
	// (nil = property held).
	Consistency error
	Validity    error
	Termination error
}

// Ok reports whether all three properties held.
func (r *Report) Ok() bool {
	return r.Consistency == nil && r.Validity == nil && r.Termination == nil
}

// validate rejects configurations the simulator cannot execute meaningfully.
// It runs on the raw Config, before defaults are applied.
func (c *Config) validate() error {
	if c.N <= 0 {
		return fmt.Errorf("ccba: config N=%d; need at least one node", c.N)
	}
	if c.F < 0 {
		return fmt.Errorf("ccba: config F=%d; the corruption budget cannot be negative", c.F)
	}
	if c.F >= c.N {
		return fmt.Errorf("ccba: config F=%d with N=%d; need F < N so at least one node stays honest", c.F, c.N)
	}
	if c.Inputs != nil && !c.Protocol.Broadcast() && len(c.Inputs) != c.N {
		return fmt.Errorf("ccba: config has %d inputs for N=%d nodes", len(c.Inputs), c.N)
	}
	if c.Protocol == CommitteeEcho && c.N < 2 {
		return fmt.Errorf("ccba: committee echo needs N ≥ 2 (a sender plus at least one echoer), got N=%d", c.N)
	}
	return nil
}

func (c *Config) applyDefaults() {
	if c.Crypto == "" {
		c.Crypto = Ideal
	}
	if c.Epochs == 0 {
		c.Epochs = 20
	}
	if c.MaxIters == 0 {
		c.MaxIters = 60
	}
	if c.Lambda == 0 {
		c.Lambda = 40
	}
	if c.CommitteeSize == 0 {
		n, size := c.N, 2
		for n > 1 {
			n >>= 1
			size += 2
		}
		if size >= c.N {
			// 2·log₂n exceeds n at small n; cap below n but never below one
			// member (N=1 used to compute an empty committee here before
			// validate started rejecting single-node committee echo).
			size = c.N - 1
			if size < 1 {
				size = 1
			}
		}
		c.CommitteeSize = size
	}
	if !c.Protocol.Broadcast() && c.Inputs == nil {
		c.Inputs = make([]Bit, c.N)
		for i := range c.Inputs {
			c.Inputs[i] = types.BitFromBool(i%2 == 0)
		}
	}
	if c.Protocol.Broadcast() && !c.SenderInput.Valid() {
		c.SenderInput = Zero
	}
}

// Run executes one instance and evaluates the security properties.
func Run(cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg.applyDefaults()
	nodes, seize, maxRounds, err := build(cfg)
	if err != nil {
		return nil, err
	}
	rt, err := netsim.NewRuntime(netsim.Config{
		N: cfg.N, F: cfg.F, MaxRounds: maxRounds,
		Seize:    seize,
		Parallel: cfg.Parallel,
	}, nodes, cfg.Adversary)
	if err != nil {
		return nil, err
	}
	res := rt.Run()
	rep := &Report{Result: res, Inputs: cfg.Inputs}
	rep.Consistency = netsim.CheckConsistency(res)
	rep.Termination = netsim.CheckTermination(res)
	if cfg.Protocol.Broadcast() {
		rep.Validity = netsim.CheckBroadcastValidity(res, cfg.Sender, cfg.SenderInput)
	} else {
		rep.Validity = netsim.CheckAgreementValidity(res, cfg.Inputs)
	}
	return rep, nil
}

// build constructs the protocol instance selected by cfg.
func build(cfg Config) (nodes []netsim.Node, seize func(NodeID) any, maxRounds int, err error) {
	switch cfg.Protocol {
	case Core, CoreBroadcast:
		suite, suiteSeize, err := coreSuite(cfg)
		if err != nil {
			return nil, nil, 0, err
		}
		ccfg := core.Config{N: cfg.N, F: cfg.F, Lambda: cfg.Lambda, MaxIters: cfg.MaxIters, Suite: suite}
		if cfg.Protocol == Core {
			nodes, err = core.NewNodes(ccfg, cfg.Inputs)
			return nodes, suiteSeize, ccfg.Rounds(), err
		}
		nodes, err = broadcast.NewNodes(cfg.N, cfg.Sender, cfg.SenderInput,
			func(id NodeID, input Bit) (netsim.Node, error) { return core.New(ccfg, id, input) })
		return nodes, suiteSeize, ccfg.Rounds() + 1, err

	case Quadratic:
		pub, secrets := pki.Setup(cfg.N, cfg.Seed)
		qcfg := quadratic.Config{
			N: cfg.N, F: cfg.F, MaxIters: cfg.MaxIters,
			Oracle: leader.New(cfg.Seed, cfg.N), PKI: pub,
		}
		nodes, err = quadratic.NewNodes(qcfg, cfg.Inputs, secrets)
		return nodes, func(id NodeID) any { return secrets[id] }, qcfg.Rounds(), err

	case PhaseKingPlain:
		pcfg := phaseking.Config{N: cfg.N, Epochs: cfg.Epochs, CoinSeed: cfg.Seed}
		nodes, err = phaseking.NewNodes(pcfg, cfg.Inputs)
		return nodes, nil, pcfg.Rounds() + 1, err

	case PhaseKingSampled:
		suite := fmine.NewIdeal(cfg.Seed, phaseking.Probabilities(cfg.N, cfg.Lambda))
		var suiteAny fmine.Suite = suite
		if cfg.Crypto == Real {
			pub, secrets := pki.Setup(cfg.N, cfg.Seed)
			suiteAny = fmine.NewReal(pub, secrets, phaseking.Probabilities(cfg.N, cfg.Lambda))
		}
		pcfg := phaseking.Config{
			N: cfg.N, Epochs: cfg.Epochs, Sampled: true, Lambda: cfg.Lambda,
			Suite: suiteAny, CoinSeed: cfg.Seed,
		}
		nodes, err = phaseking.NewNodes(pcfg, cfg.Inputs)
		return nodes, func(id NodeID) any { return suiteAny.Miner(id) }, pcfg.Rounds() + 1, err

	case ChenMicali:
		pub, secrets := pki.Setup(cfg.N, cfg.Seed)
		var suite fmine.Suite = fmine.NewIdeal(cfg.Seed, chenmicali.Probabilities(cfg.N, cfg.Lambda))
		if cfg.Crypto == Real {
			suite = fmine.NewReal(pub, secrets, chenmicali.Probabilities(cfg.N, cfg.Lambda))
		}
		mcfg := chenmicali.Config{
			N: cfg.N, Epochs: cfg.Epochs, Lambda: cfg.Lambda, Erasure: cfg.Erasure,
			Suite: suite, PKI: pub,
		}
		var keys []*chenmicali.Keys
		nodes, keys, err = chenmicali.NewNodes(mcfg, cfg.Inputs, secrets)
		return nodes, func(id NodeID) any { return keys[id] }, mcfg.Rounds() + 1, err

	case DolevStrong:
		pub, secrets := pki.Setup(cfg.N, cfg.Seed)
		dcfg := dolevstrong.Config{N: cfg.N, F: cfg.F, Sender: cfg.Sender, PKI: pub}
		nodes, err = dolevstrong.NewNodes(dcfg, cfg.SenderInput, secrets)
		return nodes, func(id NodeID) any { return secrets[id] }, dcfg.Rounds(), err

	case CommitteeEcho:
		ecfg := committee.Config{N: cfg.N, CommitteeSize: cfg.CommitteeSize, Sender: cfg.Sender, CRS: cfg.Seed}
		nodes, err = committee.NewNodes(ecfg, cfg.SenderInput)
		return nodes, nil, ecfg.Rounds(), err

	default:
		return nil, nil, 0, fmt.Errorf("ccba: unknown protocol %q", cfg.Protocol)
	}
}

// coreSuite builds the eligibility suite for the core protocol per the
// crypto mode, along with the seize function handing miners to the
// adversary.
func coreSuite(cfg Config) (fmine.Suite, func(NodeID) any, error) {
	probs := core.Probabilities(cfg.N, cfg.Lambda)
	var suite fmine.Suite
	switch cfg.Crypto {
	case Ideal:
		suite = fmine.NewIdeal(cfg.Seed, probs)
	case Real:
		pub, secrets := pki.Setup(cfg.N, cfg.Seed)
		suite = fmine.NewReal(pub, secrets, probs)
	default:
		return nil, nil, fmt.Errorf("ccba: unknown crypto mode %q", cfg.Crypto)
	}
	return suite, func(id NodeID) any { return suite.Miner(id) }, nil
}

// TrialStats aggregates repeated runs of one configuration with derived
// seeds: per-metric summaries across trials plus the violation rate with its
// 95% Wilson score interval.
type TrialStats struct {
	Trials     int `json:"trials"`
	Violations int `json:"violations"`
	// ViolationRate is Violations/Trials; [ViolationLo, ViolationHi] is its
	// 95% Wilson score interval.
	ViolationRate float64 `json:"violation_rate"`
	ViolationLo   float64 `json:"violation_wilson95_lo"`
	ViolationHi   float64 `json:"violation_wilson95_hi"`
	// Cross-trial summaries of the execution metrics.
	Rounds     stats.Summary `json:"rounds"`
	Multicasts stats.Summary `json:"multicasts"`
	Messages   stats.Summary `json:"messages"`
	McastBytes stats.Summary `json:"mcast_bytes"`
	// Headline means, equal to the corresponding Summary.Mean fields; kept
	// off the JSON schema, which already carries them inside each summary.
	MeanRounds     float64 `json:"-"`
	MeanMulticasts float64 `json:"-"`
	MeanMessages   float64 `json:"-"`
	MeanMcastBytes float64 `json:"-"`
}

// TrialOpts configures RunTrialsOpts.
type TrialOpts struct {
	// Trials is the number of independent runs (must be positive).
	Trials int
	// Workers sizes the trial worker pool; 0 or less means GOMAXPROCS.
	// Aggregates are identical for every worker count.
	Workers int
	// Name keys the seed derivation (default "ccba.RunTrials"); distinct
	// names yield statistically independent sweeps over the same Config.
	Name string
	// NewAdversary builds a fresh adversary for each trial. Adversaries are
	// frequently stateful (corruption counters, attack phases), so one
	// instance must never be shared across trials; Config.Adversary is
	// rejected by the trial runners for exactly that reason.
	NewAdversary func(trial int) Adversary
	// OnReport, when non-nil, receives every trial's report in trial order
	// once all trials have finished.
	OnReport func(trial int, rep *Report)
}

// RunTrials runs cfg opts.Trials times with hash-derived seeds and
// aggregates. Trials are fully isolated: each gets a seed derived by hashing
// (cfg.Seed, name, protocol, trial) — no XOR tweaks that collide across base
// seeds — its own deep copy of cfg.Inputs, and a fresh adversary from
// opts.NewAdversary.
func RunTrials(cfg Config, trials int) (*TrialStats, error) {
	return RunTrialsOpts(cfg, TrialOpts{Trials: trials})
}

// RunTrialsOpts is RunTrials with explicit worker, adversary-factory, and
// observer options.
func RunTrialsOpts(cfg Config, opts TrialOpts) (*TrialStats, error) {
	if cfg.Adversary != nil {
		return nil, fmt.Errorf("ccba: Config.Adversary would be shared (and carry state) across trials; set TrialOpts.NewAdversary instead")
	}
	if opts.Trials <= 0 {
		return nil, fmt.Errorf("ccba: trials=%d", opts.Trials)
	}
	name := opts.Name
	if name == "" {
		name = "ccba.RunTrials"
	}
	reports, err := harness.Run(harness.Options{
		Name:     name,
		Scenario: string(cfg.Protocol),
		Trials:   opts.Trials,
		Workers:  opts.Workers,
		Base:     cfg.Seed,
	}, func(tr harness.Trial) (*Report, error) {
		c := cfg
		c.Seed = tr.Seed
		if cfg.Inputs != nil {
			c.Inputs = append([]Bit(nil), cfg.Inputs...)
		}
		if opts.NewAdversary != nil {
			c.Adversary = opts.NewAdversary(tr.Index)
		}
		return Run(c)
	})
	if err != nil {
		return nil, err
	}

	out := &TrialStats{Trials: opts.Trials}
	rounds := make([]float64, 0, opts.Trials)
	mcasts := make([]float64, 0, opts.Trials)
	msgs := make([]float64, 0, opts.Trials)
	mbytes := make([]float64, 0, opts.Trials)
	for t, rep := range reports {
		if opts.OnReport != nil {
			opts.OnReport(t, rep)
		}
		if !rep.Ok() {
			out.Violations++
		}
		rounds = append(rounds, float64(rep.Rounds))
		mcasts = append(mcasts, float64(rep.Result.Metrics.HonestMulticasts))
		msgs = append(msgs, float64(rep.Result.Metrics.HonestMessages))
		mbytes = append(mbytes, float64(rep.Result.Metrics.HonestMulticastBytes))
	}
	out.Rounds = stats.Summarize(rounds)
	out.Multicasts = stats.Summarize(mcasts)
	out.Messages = stats.Summarize(msgs)
	out.McastBytes = stats.Summarize(mbytes)
	out.MeanRounds = out.Rounds.Mean
	out.MeanMulticasts = out.Multicasts.Mean
	out.MeanMessages = out.Messages.Mean
	out.MeanMcastBytes = out.McastBytes.Mean
	out.ViolationRate = stats.Rate(out.Violations, opts.Trials)
	out.ViolationLo, out.ViolationHi = stats.WilsonInterval(out.Violations, opts.Trials, 1.96)
	return out, nil
}
