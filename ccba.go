// Package ccba is a Go reproduction of "Communication Complexity of
// Byzantine Agreement, Revisited" (Abraham, Chan, Dolev, Nayak, Pass, Ren,
// Shi — PODC 2019).
//
// It provides:
//
//   - the paper's primary contribution — a synchronous Byzantine Agreement
//     protocol with polylogarithmic multicast complexity, resilience
//     f < (1/2−ε)n against a weakly adaptive adversary, and expected O(1)
//     rounds (Protocol Core), in both the F_mine-hybrid world and a
//     real-crypto world (Ed25519-based VRF over a trusted PKI);
//   - every baseline the paper reasons about: the plain and sub-sampled
//     phase-king warm-ups (§3.1–3.2), the quadratic protocol of Appendix
//     C.1, Dolev–Strong, a static CRS committee protocol, and a
//     Chen–Micali-style non-bit-specific variant with optional memory
//     erasure;
//   - the execution model of Appendix A.1 (synchronous rounds, rushing
//     adaptive adversaries, enforced after-the-fact-removal boundary) with
//     a pluggable network-model layer — worst-case Δ-delay scheduling,
//     seeded jitter, per-link omission faults, temporary partitions — and a
//     library of attack strategies, including the Theorem 1 and Theorem 3
//     lower-bound adversaries.
//
// The top-level API runs one protocol instance under one adversary:
//
//	cfg := ccba.Config{Protocol: ccba.Core, N: 200, F: 60, Lambda: 40}
//	report, err := ccba.Run(cfg)
//
// Report carries the execution result, communication metrics, and the
// outcome of the consistency/validity/termination checkers. Everything is
// deterministic given Config.Seed.
//
// Protocols, adversaries, and network models all resolve through the
// registries of internal/scenario, re-exported here: a Scenario is one
// declarative record of protocol × N/F/λ × adversary × network model ×
// inputs, and named scenarios (ScenarioNames, LookupScenario) are shared by
// the library, the experiment generators, and the cmd binaries.
package ccba

import (
	"context"
	"fmt"

	"ccba/internal/attest"
	"ccba/internal/harness"
	"ccba/internal/netsim"
	"ccba/internal/obs"
	"ccba/internal/scenario"
	"ccba/internal/stats"
	"ccba/internal/types"
)

// Re-exported primitive types, so callers outside the module never need the
// internal packages.
type (
	// Bit is a binary consensus value.
	Bit = types.Bit
	// NodeID identifies a participant.
	NodeID = types.NodeID
	// Result is a completed execution.
	Result = netsim.Result
	// Metrics is the communication-complexity accounting of Definitions 6–7.
	Metrics = netsim.Metrics
	// Adversary is a pluggable corruption strategy.
	Adversary = netsim.Adversary
	// Node is the sans-I/O protocol state machine interface.
	Node = netsim.Node
	// NetModel is the pluggable message-scheduling layer (delivery round
	// assignment within the synchronous bound Δ).
	NetModel = netsim.NetModel
)

// Re-exported bit values.
const (
	Zero  = types.Zero
	One   = types.One
	NoBit = types.NoBit
)

// Re-exported configuration layer: the Config, Protocol, CryptoMode, and
// network-model names live in internal/scenario alongside the registries
// that resolve them.
type (
	// Config parameterises one execution.
	Config = scenario.Config
	// Protocol selects which of the implemented protocols to run.
	Protocol = scenario.Protocol
	// CryptoMode selects the hybrid or real-crypto instantiation.
	CryptoMode = scenario.CryptoMode
	// NetName selects a network model by name.
	NetName = scenario.NetName
	// Report is the outcome of Run.
	Report = scenario.Report
	// Scenario is a declarative, optionally registered experiment setting.
	Scenario = scenario.Scenario
	// ChaosConfig declares a live-cluster fault schedule (DESIGN.md §7).
	ChaosConfig = scenario.ChaosConfig
	// AdversaryFactory builds one fresh adversary per trial of a config.
	AdversaryFactory = scenario.AdversaryFactory
	// Builder constructs a protocol's node set from a resolved Config.
	Builder = scenario.Builder
)

// The implemented protocols.
const (
	// Core is the paper's primary contribution (Appendix C.2).
	Core = scenario.Core
	// CoreBroadcast wraps Core in the §1.1 BB-from-BA reduction.
	CoreBroadcast = scenario.CoreBroadcast
	// Quadratic is the Appendix C.1 baseline.
	Quadratic = scenario.Quadratic
	// PhaseKingPlain is the §3.1 warm-up.
	PhaseKingPlain = scenario.PhaseKingPlain
	// PhaseKingSampled is the §3.2 sub-sampled warm-up.
	PhaseKingSampled = scenario.PhaseKingSampled
	// ChenMicali is the non-bit-specific ablation (§3.2 strawman).
	ChenMicali = scenario.ChenMicali
	// DolevStrong is the classic broadcast baseline.
	DolevStrong = scenario.DolevStrong
	// CommitteeEcho is the static CRS committee broadcast baseline.
	CommitteeEcho = scenario.CommitteeEcho
	// BRB is Bracha reliable broadcast on the asynchronous track (§11).
	BRB = scenario.BRB
	// ABA is common-coin asynchronous binary agreement (§11).
	ABA = scenario.ABA
	// ACS is the BKR agreement-on-common-subset composition (§11).
	ACS = scenario.ACS
)

// The asynchronous-track schedulers (DESIGN.md §11).
const (
	// SchedFIFO delivers messages in send order.
	SchedFIFO = scenario.SchedFIFO
	// SchedRandom delivers in a seeded random order.
	SchedRandom = scenario.SchedRandom
	// SchedAdvDelay holds a seeded subset of messages back by a bounded
	// priority penalty.
	SchedAdvDelay = scenario.SchedAdvDelay
)

// SchedName selects the event runtime's message scheduler by name.
type SchedName = scenario.SchedName

// AsyncInfo carries the async-track observables on Report.Async.
type AsyncInfo = scenario.AsyncInfo

// The crypto modes.
const (
	// Ideal runs in the F_mine-hybrid world of Figure 1.
	Ideal = scenario.Ideal
	// Real runs the Appendix D compiler (Ed25519 VRF over a trusted PKI).
	Real = scenario.Real
)

// The network models.
const (
	// NetDeltaOne is the default lockstep model (Δ = 1).
	NetDeltaOne = scenario.NetDeltaOne
	// NetWorstCase holds every link to the delivery bound Δ.
	NetWorstCase = scenario.NetWorstCase
	// NetJitter delays each link by a seeded uniform amount in [1, Δ].
	NetJitter = scenario.NetJitter
	// NetOmission drops links from omission-faulty senders with probability
	// OmissionRate.
	NetOmission = scenario.NetOmission
	// NetPartition temporarily holds cross-partition links to Δ.
	NetPartition = scenario.NetPartition
)

// Re-exported observability layer (DESIGN.md §10): deterministic
// round-lifecycle tracing with canonical JSONL export, plus the attestation
// intern table's sharing statistics surfaced on Report.Intern.
type (
	// Tracer receives the round-lifecycle event stream. Set Config.Tracer
	// to trace an execution; the content is a pure function of (config,
	// seed), identical for every worker count and — at Δ=1 — identical to a
	// live chan-cluster trace of the same config.
	Tracer = obs.Tracer
	// TraceEvent is one round-lifecycle event.
	TraceEvent = obs.Event
	// TraceRecorder is the ring-buffered in-memory Tracer; its WriteJSONL
	// emits the canonical export cmd/tracediff aligns on.
	TraceRecorder = obs.Recorder
	// InternStats is the attestation intern table's sharing telemetry.
	InternStats = attest.InternStats
)

// NewTraceRecorder builds a ring-buffered trace recorder; capacity ≤ 0
// selects the default (2²⁰ events).
var NewTraceRecorder = obs.NewRecorder

// Registry entry points, re-exported from internal/scenario.
var (
	// Run executes one instance and evaluates the security properties.
	// Protocols resolve through the builder registry; message delivery
	// through the network model named by the config.
	Run = scenario.Run
	// RunCtx is Run with cancellation: the runtime checks the context
	// between rounds, so long executions stop promptly when the caller
	// gives up.
	RunCtx = scenario.RunCtx
	// BuildNodes constructs a protocol's node set through the builder
	// registry without executing it — for callers that drive their own
	// runtime (the lower-bound engines, instrumented executions).
	BuildNodes = scenario.Build
	// RegisterProtocol adds a protocol builder to the registry.
	RegisterProtocol = scenario.RegisterProtocol
	// VictimFactory adapts a broadcast config into the node-set factory the
	// Theorem 1 strongly adaptive engine drives.
	VictimFactory = scenario.VictimFactory
	// SplitWorlds builds both node sets of the Theorem 3 Q—1—Q′ experiment.
	SplitWorlds = scenario.SplitWorlds
	// Protocols lists the registered protocol names.
	Protocols = scenario.Protocols
	// RegisterScenario adds a named scenario to the registry.
	RegisterScenario = scenario.Register
	// LookupScenario resolves a named scenario.
	LookupScenario = scenario.Lookup
	// ScenarioNames lists the registered scenarios.
	ScenarioNames = scenario.Names
	// RegisterAdversary adds a named adversary factory.
	RegisterAdversary = scenario.RegisterAdversary
	// NewAdversary builds a fresh instance of a named adversary for one
	// trial ("" and "none" mean passive).
	NewAdversary = scenario.NewAdversary
	// Adversaries lists the registered adversary names.
	Adversaries = scenario.Adversaries
)

// TrialStats aggregates repeated runs of one configuration with derived
// seeds: per-metric summaries across trials plus the violation rate with its
// 95% Wilson score interval.
type TrialStats struct {
	Trials     int `json:"trials"`
	Violations int `json:"violations"`
	// ViolationRate is Violations/Trials; [ViolationLo, ViolationHi] is its
	// 95% Wilson score interval.
	ViolationRate float64 `json:"violation_rate"`
	ViolationLo   float64 `json:"violation_wilson95_lo"`
	ViolationHi   float64 `json:"violation_wilson95_hi"`
	// Cross-trial summaries of the execution metrics.
	Rounds     stats.Summary `json:"rounds"`
	Multicasts stats.Summary `json:"multicasts"`
	Messages   stats.Summary `json:"messages"`
	McastBytes stats.Summary `json:"mcast_bytes"`
	// Headline means, equal to the corresponding Summary.Mean fields; kept
	// off the JSON schema, which already carries them inside each summary.
	MeanRounds     float64 `json:"-"`
	MeanMulticasts float64 `json:"-"`
	MeanMessages   float64 `json:"-"`
	MeanMcastBytes float64 `json:"-"`
}

// TrialOpts configures RunTrialsOpts.
type TrialOpts struct {
	// Ctx cancels the sweep: the worker pool stops picking up trials, any
	// in-flight executions stop at their next round, and RunTrialsOpts
	// returns the context's error. Nil means context.Background().
	Ctx context.Context
	// Trials is the number of independent runs (must be positive).
	Trials int
	// Workers sizes the trial worker pool; 0 or less means GOMAXPROCS.
	// Aggregates are identical for every worker count.
	Workers int
	// Name keys the seed derivation (default "ccba.RunTrials"); distinct
	// names yield statistically independent sweeps over the same Config.
	Name string
	// NewAdversary builds a fresh adversary for each trial. Adversaries are
	// frequently stateful (corruption counters, attack phases), so one
	// instance must never be shared across trials; Config.Adversary is
	// rejected by the trial runners for exactly that reason.
	NewAdversary func(trial int) Adversary
	// OnReport, when non-nil, receives every trial's report in trial order
	// once all trials have finished.
	OnReport func(trial int, rep *Report)
}

// RunTrials runs cfg opts.Trials times with hash-derived seeds and
// aggregates. Trials are fully isolated: each gets a seed derived by hashing
// (cfg.Seed, name, protocol, trial) — no XOR tweaks that collide across base
// seeds — its own deep copy of cfg.Inputs, and a fresh adversary from
// opts.NewAdversary.
func RunTrials(cfg Config, trials int) (*TrialStats, error) {
	return RunTrialsOpts(cfg, TrialOpts{Trials: trials})
}

// RunTrialsOpts is RunTrials with explicit worker, adversary-factory, and
// observer options.
func RunTrialsOpts(cfg Config, opts TrialOpts) (*TrialStats, error) {
	if cfg.Adversary != nil {
		return nil, fmt.Errorf("ccba: Config.Adversary would be shared (and carry state) across trials; set TrialOpts.NewAdversary instead")
	}
	if opts.Trials <= 0 {
		return nil, fmt.Errorf("ccba: trials=%d", opts.Trials)
	}
	name := opts.Name
	if name == "" {
		name = "ccba.RunTrials"
	}
	reports, err := harness.Run(harness.Options{
		Name:     name,
		Scenario: string(cfg.Protocol),
		Trials:   opts.Trials,
		Workers:  opts.Workers,
		Base:     cfg.Seed,
		Ctx:      opts.Ctx,
	}, func(tr harness.Trial) (*Report, error) {
		c := cfg
		c.Seed = tr.Seed
		if cfg.Inputs != nil {
			c.Inputs = append([]Bit(nil), cfg.Inputs...)
		}
		if opts.NewAdversary != nil {
			c.Adversary = opts.NewAdversary(tr.Index)
		}
		return RunCtx(tr.Ctx, c)
	})
	if err != nil {
		return nil, err
	}

	out := &TrialStats{Trials: opts.Trials}
	rounds := make([]float64, 0, opts.Trials)
	mcasts := make([]float64, 0, opts.Trials)
	msgs := make([]float64, 0, opts.Trials)
	mbytes := make([]float64, 0, opts.Trials)
	for t, rep := range reports {
		if opts.OnReport != nil {
			opts.OnReport(t, rep)
		}
		if !rep.Ok() {
			out.Violations++
		}
		rounds = append(rounds, float64(rep.Rounds))
		mcasts = append(mcasts, float64(rep.Result.Metrics.HonestMulticasts))
		msgs = append(msgs, float64(rep.Result.Metrics.HonestMessages))
		mbytes = append(mbytes, float64(rep.Result.Metrics.HonestMulticastBytes))
	}
	out.Rounds = stats.Summarize(rounds)
	out.Multicasts = stats.Summarize(mcasts)
	out.Messages = stats.Summarize(msgs)
	out.McastBytes = stats.Summarize(mbytes)
	out.MeanRounds = out.Rounds.Mean
	out.MeanMulticasts = out.Multicasts.Mean
	out.MeanMessages = out.Messages.Mean
	out.MeanMcastBytes = out.McastBytes.Mean
	out.ViolationRate = stats.Rate(out.Violations, opts.Trials)
	out.ViolationLo, out.ViolationHi = stats.WilsonInterval(out.Violations, opts.Trials, 1.96)
	return out, nil
}
