package ccba

import (
	"testing"

	"ccba/internal/attest"
	"ccba/internal/broadcast"
	"ccba/internal/chenmicali"
	"ccba/internal/committee"
	"ccba/internal/core"
	"ccba/internal/crypto/sig"
	"ccba/internal/dolevstrong"
	"ccba/internal/phaseking"
	"ccba/internal/quadratic"
	"ccba/internal/types"
	"ccba/internal/wire"
)

// Communication-complexity accounting uses Message.Size instead of encoding
// every honest send into a throwaway buffer, so Size must agree exactly with
// the canonical encoding for every message type in the repository, across
// empty, short, and certificate-bearing shapes.
func TestMessageSizesMatchEncoding(t *testing.T) {
	cert := attest.Certificate{Iter: 3, Bit: types.One, Atts: []attest.Attestation{
		{ID: 1, Proof: []byte{1, 2, 3}},
		{ID: 9, Proof: make([]byte, 64)},
	}}
	empty := attest.Certificate{}
	atts := cert.Atts

	msgs := []wire.Message{
		core.StatusMsg{Iter: 2, B: types.Zero, Cert: cert, Elig: []byte{4}},
		core.StatusMsg{Iter: 2, B: types.One, Cert: empty},
		core.ProposeMsg{Iter: 2, B: types.One, Cert: cert, Elig: make([]byte, 32)},
		core.VoteMsg{Iter: 2, B: types.Zero, Elig: []byte{5, 6}, Leader: 7, LeaderElig: []byte{8}},
		core.VoteMsg{Iter: 1, B: types.One},
		core.CommitMsg{Iter: 2, B: types.One, Cert: cert, Elig: []byte{9}},
		core.TerminateMsg{Iter: 2, B: types.Zero, Commits: atts, Elig: []byte{1}},
		core.TerminateMsg{Iter: 2, B: types.Zero},

		quadratic.StatusMsg{Iter: 4, B: types.One, Cert: cert},
		quadratic.ProposeMsg{Iter: 4, B: types.Zero, Cert: empty, Sig: make([]byte, 64)},
		quadratic.VoteMsg{Iter: 4, B: types.One, Sig: []byte{1}, LeaderSig: []byte{2, 3}},
		quadratic.CommitMsg{Iter: 4, B: types.Zero, Cert: cert, Sig: []byte{4}},
		quadratic.TerminateMsg{Iter: 4, B: types.One, Commits: atts},

		phaseking.ProposeMsg{Epoch: 1, B: types.Zero, Elig: []byte{1, 2}},
		phaseking.AckMsg{Epoch: 1, B: types.One},

		chenmicali.ProposeMsg{Epoch: 2, B: types.One, Elig: []byte{3}},
		chenmicali.AckMsg{Epoch: 2, B: types.Zero, Elig: []byte{4}, Sig: make([]byte, 64)},

		dolevstrong.ChainMsg{Chain: sig.Chain{Bit: types.One, Signers: []types.NodeID{1, 2},
			Sigs: [][]byte{make([]byte, 64), {7}}}},
		dolevstrong.ChainMsg{},

		committee.SendMsg{B: types.One},
		committee.EchoMsg{B: types.Zero},
		broadcast.InputMsg{B: types.One},
	}

	for i, m := range msgs {
		if got, want := m.Size(), len(m.Encode(nil)); got != want {
			t.Errorf("msg %d (%T): Size() = %d, encoded length = %d", i, m, got, want)
		}
		if got, want := wire.Size(m), len(wire.Marshal(m)); got != want {
			t.Errorf("msg %d (%T): wire.Size = %d, marshalled length = %d", i, m, got, want)
		}
	}
}
